//! A network-simplex backend for the minimum-cost solve.
//!
//! The primal-dual kernel of [`crate::mincost`] is at its constant-factor
//! floor: every phase scans the whole edge set, and on the tie-rich
//! transportation networks of the scheduler most phases move little flow.
//! The network simplex walks the *vertices* of the flow polytope instead:
//! it maintains a spanning-tree basis, prices the nonbasic arcs against the
//! tree's node potentials, and pivots along the unique tree cycle of an
//! eligible arc.  On product-form transportation costs (the System-(2)
//! objective) the admissible structure is exactly what a spanning-tree basis
//! captures, so pivots are few and each one touches only a tree path.
//!
//! Implementation notes:
//!
//! * **Maximum flow via a big-cost return arc.**  The min-cost *max*-flow
//!   semantics of [`crate::backend::MinCostBackend`] are obtained by adding a
//!   `sink → source` arc of cost `-BIG` (with `BIG` dominating any simple
//!   path cost) and solving a zero-supply min-cost circulation, so flow
//!   maximisation and cost minimisation happen in one pivot sequence.
//! * **Strongly feasible basis.**  The initial basis is the star of
//!   artificial root arcs (every node pointing at an artificial root), which
//!   is strongly feasible; the leaving-arc rule breaks ratio-test ties the
//!   standard way (last blocking arc against the cycle orientation), which
//!   preserves strong feasibility and rules out cycling on degenerate
//!   pivots.
//! * **Block pricing.**  The entering arc is the most negative reduced cost
//!   in the first block (of `≈√m` arcs) containing any eligible arc, with a
//!   per-solve rolling start position — the standard compromise between
//!   Dantzig pricing and round-robin.  The start position resets at every
//!   solve so a solve is a pure function of its instance and start basis.
//! * **Deterministic optimum (lexicographic tie-break).**  The System-(2)
//!   costs are massively tied — a job's work costs the same in a given
//!   interval on *every* site hosting its databank — so the optimal face
//!   has many vertices and the one a pivot sequence lands on depends on the
//!   start basis.  To make warm-started and cold solves agree **bit for
//!   bit**, every arc carries a secondary integer cost (a pseudo-random
//!   function of its endpoints' stable keys when the caller supplied them,
//!   of its index otherwise; exact in `f64`), pricing compares reduced
//!   costs lexicographically (phase 2 of [`NetworkSimplexBackend`]'s pivot
//!   loop), and the solve only stops at the unique lexicographic optimum.
//!   Keying the tie-break by stable identities also makes the canonical
//!   vertex *stable across events*, which is what keeps the phase-2 face
//!   walk short for remapped warm starts.  The final basis is then
//!   *canonicalised*: flows are re-derived from the vertex itself, not from
//!   the pivot history, so any two pivot paths reaching the optimum produce
//!   identical bytes.
//! * **Warm starts.**  Three tiers, checked in order.  The first two
//!   re-prime the basis for the new data: nonbasic flows snap to their
//!   bounds, tree flows are recomputed by conservation (leaf elimination,
//!   with a bounded big-M repair hanging any misfit on artificial arcs)
//!   and potentials are rebuilt; if re-priming fails outright the solver
//!   crashes fresh, so correctness never depends on the warm start.
//!   1. **Exact topology** — the next network has the same arc list (the
//!      repeated-solve case): the previous basis is re-primed in place.
//!   2. **Basis remap** ([`crate::remap::BasisRemap`]) — the network changed
//!      shape but the caller supplied stable node keys through
//!      [`MinCostBackend::warm_hint`] (the cross-*event* case of the on-line
//!      schedulers: jobs complete, intervals move, most of the network
//!      persists): surviving arcs keep their basis state, departed arcs are
//!      pruned, new arcs enter nonbasic, and a bounded union–find repair
//!      pass restores a spanning tree.
//!   3. **Cold** — the crash basis of artificial root arcs.
//! * **Numerical safety net.**  All comparisons use scale-aware epsilons; if
//!   the pivot budget is ever exhausted (pathological numerics), the backend
//!   resets the network and delegates to the primal-dual reference kernel,
//!   so a degraded instance costs time, not correctness.

use crate::backend::MinCostBackend;
use crate::graph::FlowNetwork;
use crate::mincost::{min_cost_flow_up_to, MinCostResult};
use crate::remap::{repair_spanning_tree, BasisRemap};
use crate::workspace::FlowWorkspace;
use crate::FLOW_EPS;

/// Nonbasic arc at its lower bound (zero flow).
pub const STATE_LOWER: i8 = 1;
/// Basic arc (in the spanning tree).
pub const STATE_TREE: i8 = 0;
/// Nonbasic arc at its upper bound (flow = capacity).
pub const STATE_UPPER: i8 = -1;

/// One splitmix64 finalisation round.
fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Secondary (tie-break) cost of arc `a` when no stable keys are known: a
/// pseudo-random 30-bit integer derived from the arc index.
///
/// Integer-valued and bounded by 2³⁰, so sums of up to ~2²³ of them along
/// tree paths stay exact in `f64` (far beyond any realistic node count);
/// pseudo-random, so alternating sums along cycles are nonzero with
/// overwhelming probability — which is what makes the lexicographic
/// optimum unique and the solve start-basis-independent.  The width
/// matters: the System-(2) tie structure yields on the order of
/// `jobs² · sites² · intervals` primary-tied 4-cycles per instance, so a
/// 20-bit channel would be expected to hit a zero alternating sum at paper
/// scale; at 30 bits the expected count stays far below one.  (A
/// monotone-in-index ramp would shorten the phase-2 face walk a little,
/// but its alternating sums cancel on short cycles, which loses uniqueness
/// — and with it the warm/cold bit-identity.)
fn tie_cost(a: usize) -> f64 {
    (mix64(a as u64) >> 34) as f64
}

/// Secondary cost of an arc identified by its endpoints' **stable keys**.
///
/// Same uniqueness properties as [`tie_cost`], with one decisive extra:
/// the value is *stable across events*.  The canonical (lexicographically
/// optimal) vertex of one event then restricts to almost the canonical
/// vertex of the next, so a warm start remapped from the previous canonical
/// basis begins phase 2 already at — or a few pivots from — its target,
/// while an index-keyed tie-break would re-randomise the target at every
/// event and send warm starts on a long face walk.
fn keyed_tie_cost(key_from: u64, key_to: u64) -> f64 {
    (mix64(mix64(key_from) ^ key_to.rotate_left(32)) >> 34) as f64
}

/// Which side of the entering arc's cycle a blocking arc was found on.
#[derive(Clone, Copy, PartialEq)]
enum Side {
    /// The path from the node the augmentation *leaves* the tree towards.
    First,
    /// The path from the node the augmentation *enters* the tree from.
    Second,
}

/// Which warm-start tier [`NetworkSimplexBackend::load`] selected.
#[derive(Clone, Copy, PartialEq)]
enum WarmPath {
    /// Same arc list as the previous solve: re-prime the basis in place.
    Exact,
    /// Different shape, stable keys available: remap the basis.
    Remap,
    /// No reusable basis: crash fresh.
    Cold,
}

/// Min-cost max-flow by network simplex; see the module docs.
///
/// Hold one per solver and feed it every instance: scratch memory — and the
/// spanning-tree basis, re-primed on exact topology repeats and *remapped*
/// across shape changes when [`MinCostBackend::warm_hint`] supplies stable
/// node keys — is reused across solves.
pub struct NetworkSimplexBackend {
    // --- arc arrays (real arcs, then the return arc, then root arcs) ---
    from: Vec<usize>,
    to: Vec<usize>,
    cap: Vec<f64>,
    cost: Vec<f64>,
    /// Secondary integer costs of the lexicographic tie-break.
    cost2: Vec<f64>,
    flow: Vec<f64>,
    state: Vec<i8>,
    // --- spanning tree ---
    parent: Vec<usize>,
    pred: Vec<usize>,
    depth: Vec<usize>,
    children: Vec<Vec<usize>>,
    pi: Vec<f64>,
    /// Secondary potentials (exact integers, paired with `cost2`).
    pi2: Vec<f64>,
    // --- warm-start bookkeeping ---
    /// `(from << 32) | to` per real arc of the last solve; the exact-topology
    /// warm start is attempted only when the next instance matches exactly.
    signature: Vec<u64>,
    /// Node count (excluding the artificial root) of the last solve.
    num_nodes: usize,
    /// `true` when the stored basis belongs to a completed solve.
    basis_valid: bool,
    /// `false` disables every cross-solve reuse tier (the "cold" reference
    /// configuration of the `STRETCH_WARM_START` matrix).
    warm_start: bool,
    /// Stable node keys supplied for the *next* solve via
    /// [`MinCostBackend::warm_hint`].
    hint: Vec<u64>,
    hint_valid: bool,
    /// Cross-event basis memory (keyed by the hint of the solve it recorded).
    remap: BasisRemap,
    // --- scratch ---
    remap_states: Vec<i8>,
    state_backup: Vec<i8>,
    flow_backup: Vec<f64>,
    uf: Vec<usize>,
    tree_adj: Vec<Vec<(usize, usize)>>,
    visited: Vec<bool>,
    elim_order: Vec<usize>,
    path_nodes: Vec<usize>,
    path_preds: Vec<usize>,
    dfs_stack: Vec<usize>,
    excess: Vec<f64>,
    /// Rolling start position of the pricing block (reset per solve).
    block_pos: usize,
    /// Pivot budget blow-ups so far (each one fell back to the reference
    /// kernel); exposed for tests and diagnostics.
    fallbacks: usize,
    /// Solves that took the basis-remap warm tier; diagnostic.
    remapped_solves: usize,
}

impl Default for NetworkSimplexBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl NetworkSimplexBackend {
    /// Creates a backend with empty scratch (grows on first use) and every
    /// warm-start tier enabled.
    pub fn new() -> Self {
        Self::with_warm_start(true)
    }

    /// Creates a backend with cross-solve basis reuse switched on or off.
    ///
    /// With `false`, every solve crashes a fresh basis and
    /// [`MinCostBackend::warm_hint`] is ignored — the "cold" reference the
    /// warm/cold bit-identity contract is pinned against.
    pub fn with_warm_start(warm_start: bool) -> Self {
        NetworkSimplexBackend {
            from: Vec::new(),
            to: Vec::new(),
            cap: Vec::new(),
            cost: Vec::new(),
            cost2: Vec::new(),
            flow: Vec::new(),
            state: Vec::new(),
            parent: Vec::new(),
            pred: Vec::new(),
            depth: Vec::new(),
            children: Vec::new(),
            pi: Vec::new(),
            pi2: Vec::new(),
            signature: Vec::new(),
            num_nodes: 0,
            basis_valid: false,
            warm_start,
            hint: Vec::new(),
            hint_valid: false,
            remap: BasisRemap::default(),
            remap_states: Vec::new(),
            state_backup: Vec::new(),
            flow_backup: Vec::new(),
            uf: Vec::new(),
            tree_adj: Vec::new(),
            visited: Vec::new(),
            elim_order: Vec::new(),
            path_nodes: Vec::new(),
            path_preds: Vec::new(),
            dfs_stack: Vec::new(),
            excess: Vec::new(),
            block_pos: 0,
            fallbacks: 0,
            remapped_solves: 0,
        }
    }

    /// How often the pivot budget blew up and the solve fell back to the
    /// primal-dual reference kernel (diagnostic; should stay at zero).
    pub fn fallback_count(&self) -> usize {
        self.fallbacks
    }

    /// How many solves started from a remapped (cross-event) basis;
    /// diagnostic for tests and benches.
    pub fn remap_count(&self) -> usize {
        self.remapped_solves
    }

    /// Loads the instance out of `network` (fresh, no flow) into the arc
    /// arrays and picks the warm-start tier (see the module docs).
    fn load(&mut self, network: &FlowNetwork, source: usize, sink: usize) -> WarmPath {
        let n = network.num_nodes();
        let m_real = network.num_edges();
        // + return arc + up root arcs (v → root) + down root arcs (root → v).
        let num_arcs = m_real + 1 + 2 * n;
        let mut same_topology = self.warm_start && self.basis_valid && self.num_nodes == n;

        self.from.clear();
        self.to.clear();
        self.cap.clear();
        self.cost.clear();
        let mut source_out = 0.0f64;
        for a in 0..m_real {
            let eid = 2 * a;
            let fwd = network.edge(eid);
            let u = network.edge(eid ^ 1).to;
            let v = fwd.to;
            self.from.push(u);
            self.to.push(v);
            self.cap.push(fwd.cap); // network carries no flow: cap == original
            self.cost.push(fwd.cost);
            if u == source {
                source_out += fwd.cap;
            }
            let sig = ((u as u64) << 32) | v as u64;
            if same_topology && self.signature.get(a).copied() != Some(sig) {
                same_topology = false;
            }
        }
        if same_topology && self.signature.len() != m_real {
            same_topology = false;
        }
        if !same_topology {
            self.signature.clear();
            self.signature.extend(
                self.from
                    .iter()
                    .zip(&self.to)
                    .map(|(&u, &v)| ((u as u64) << 32) | v as u64),
            );
        }

        // `BIG` must dominate the cost of any simple path so that the return
        // arc (a) makes every augmenting s→t path a negative cycle and
        // (b) is never worth reducing once the flow is maximum.
        let max_cost = self.cost.iter().fold(0.0f64, |m, &c| m.max(c.abs()));
        let big = (max_cost + 1.0) * (n as f64 + 2.0);

        // Return arc sink → source.
        self.from.push(sink);
        self.to.push(source);
        self.cap.push(source_out);
        self.cost.push(-big);

        // Artificial root arcs, one pair per node: `v → root` (the crash
        // basis star) and `root → v`.  Both cost `+BIG`, so no optimal
        // solution ever uses them (any root cycle pays ≥ +BIG even against
        // the return arc); mid-solve they serve two purposes — the up arcs
        // are the crash basis, and the warm-start repair pass hangs the
        // *misfit* of a remapped basis on whichever orientation the local
        // imbalance needs, for the pivots to drain.
        let root = n;
        for v in 0..n {
            self.from.push(v);
            self.to.push(root);
            self.cap.push(f64::INFINITY);
            self.cost.push(big);
        }
        for v in 0..n {
            self.from.push(root);
            self.to.push(v);
            self.cap.push(f64::INFINITY);
            self.cost.push(big);
        }
        // Secondary costs: keyed by stable identities when the caller
        // supplied them (event-stable canonical vertex — see
        // [`keyed_tie_cost`]), by arc index otherwise.  Note the hint is
        // used here even by a `warm_start = false` backend: it describes
        // *this* instance, not cross-solve state, and warm and cold solves
        // of one instance must price the same tie-break to land on the same
        // optimum.
        let have_keys = self.hint_valid && self.hint.len() == n;
        self.cost2.clear();
        if have_keys {
            let hint = &self.hint;
            let key_of = |v: usize| if v < n { hint[v] } else { u64::MAX };
            self.cost2.extend(
                self.from
                    .iter()
                    .zip(&self.to)
                    .map(|(&u, &v)| keyed_tie_cost(key_of(u), key_of(v))),
            );
        } else {
            self.cost2.extend((0..num_arcs).map(tie_cost));
        }

        debug_assert_eq!(self.from.len(), num_arcs);
        self.flow.resize(num_arcs, 0.0);
        self.num_nodes = n;
        if same_topology && self.state.len() == num_arcs {
            WarmPath::Exact
        } else if self.warm_start
            && self.remap.is_valid()
            && self.hint_valid
            && self.hint.len() == n
        {
            WarmPath::Remap
        } else {
            WarmPath::Cold
        }
    }

    /// Installs the crash basis: every real arc nonbasic at its lower bound,
    /// the artificial star as the tree.
    fn crash_basis(&mut self) {
        let n = self.num_nodes;
        let root = n;
        let num_arcs = self.from.len();
        let m_real = num_arcs - 1 - 2 * n;
        self.state.clear();
        self.state.resize(num_arcs, STATE_LOWER);
        self.flow.iter_mut().for_each(|f| *f = 0.0);
        self.parent.clear();
        self.parent.resize(n + 1, usize::MAX);
        self.pred.clear();
        self.pred.resize(n + 1, usize::MAX);
        self.depth.clear();
        self.depth.resize(n + 1, 0);
        self.pi.clear();
        self.pi.resize(n + 1, 0.0);
        self.pi2.clear();
        self.pi2.resize(n + 1, 0.0);
        self.children.resize_with(n + 1, Vec::new);
        for c in self.children.iter_mut() {
            c.clear();
        }
        for v in 0..n {
            let arc = m_real + 1 + v;
            self.state[arc] = STATE_TREE;
            self.parent[v] = root;
            self.pred[v] = arc;
            self.depth[v] = 1;
            // rc(v→root) = cost + pi[v] - pi[root] = 0 (both channels).
            self.pi[v] = -self.cost[arc];
            self.pi2[v] = -self.cost2[arc];
            self.children[root].push(v);
        }
    }

    /// Rebuilds the tree arrays (`parent`/`pred`/`depth`/`children`) from the
    /// arcs currently marked [`STATE_TREE`], by a deterministic depth-first
    /// walk from the artificial root (tree arcs visited in index order).
    /// Returns `false` when the marked arcs do not span all nodes.
    fn rebuild_tree_from_states(&mut self) -> bool {
        let n = self.num_nodes;
        let root = n;
        if self.tree_adj.len() < n + 1 {
            self.tree_adj.resize_with(n + 1, Vec::new);
        }
        for l in self.tree_adj[..n + 1].iter_mut() {
            l.clear();
        }
        for a in 0..self.from.len() {
            if self.state[a] == STATE_TREE {
                self.tree_adj[self.from[a]].push((self.to[a], a));
                self.tree_adj[self.to[a]].push((self.from[a], a));
            }
        }
        self.parent.clear();
        self.parent.resize(n + 1, usize::MAX);
        self.pred.clear();
        self.pred.resize(n + 1, usize::MAX);
        self.depth.clear();
        self.depth.resize(n + 1, 0);
        self.children.resize_with(n + 1, Vec::new);
        for c in self.children.iter_mut() {
            c.clear();
        }
        self.visited.clear();
        self.visited.resize(n + 1, false);
        self.visited[root] = true;
        self.dfs_stack.clear();
        self.dfs_stack.push(root);
        let mut reached = 1usize;
        while let Some(u) = self.dfs_stack.pop() {
            for i in 0..self.tree_adj[u].len() {
                let (v, arc) = self.tree_adj[u][i];
                if self.visited[v] {
                    continue;
                }
                self.visited[v] = true;
                self.parent[v] = u;
                self.pred[v] = arc;
                self.depth[v] = self.depth[u] + 1;
                self.children[u].push(v);
                self.dfs_stack.push(v);
                reached += 1;
            }
        }
        reached == n + 1
    }

    /// Maps the remembered cross-event basis onto the freshly loaded arc
    /// arrays (see [`BasisRemap`]) and rebuilds the tree.  Returns `false`
    /// when the repaired arc set fails to span (caller crashes fresh).
    fn apply_remap(&mut self) -> bool {
        let mut states = std::mem::take(&mut self.remap_states);
        let up_base = self.from.len() - 2 * self.num_nodes;
        self.remap.plan(
            &self.hint,
            &self.from,
            &self.to,
            self.num_nodes,
            up_base,
            &mut states,
        );
        self.state.clear();
        self.state.extend_from_slice(&states);
        self.remap_states = states;
        self.rebuild_tree_from_states()
    }

    /// Re-primes the current basis (tree arrays + states) for the loaded
    /// capacities/costs: nonbasic flows snap to their bounds, tree flows are
    /// recomputed by conservation, and potentials are rebuilt from the tree.
    /// Returns `false` when the basis is infeasible under the new data
    /// (caller then crashes fresh).
    ///
    /// With `repair` on — the warm-start tiers — an out-of-bounds tree flow
    /// does **not** reject the basis: the violating arc is clamped to the
    /// bound it broke (and demoted there), the node is re-hung on the
    /// artificial root arc of the orientation its leftover imbalance needs,
    /// and that artificial carries the misfit at `+BIG` cost for the pivot
    /// loop to drain.  This is the bounded Phase-1 replacement: across
    /// events most of the old flow pattern still fits, so only the misfit —
    /// not the whole flow — costs pivots.  With `repair` off (the canonical
    /// extraction of an optimal vertex, where violations would mean broken
    /// numerics) the strict reject is kept.
    ///
    /// The leaf-elimination order is canonical — decreasing depth, ties by
    /// node index — so the flows this pass derives are a pure function of
    /// (basis, capacities): this is what makes the canonicalised output of
    /// [`Self::canonicalize`] byte-reproducible across pivot histories.
    fn warm_basis(&mut self, eps_flow: f64, repair: bool) -> bool {
        let n = self.num_nodes;
        let root = n;
        let num_arcs = self.from.len();
        let m_real = num_arcs - 1 - 2 * n;
        let up_base = m_real + 1;
        let down_base = up_base + n;
        // Bound-snapping pass; tree arcs are handled below.
        self.excess.clear();
        self.excess.resize(n + 1, 0.0);
        for a in 0..num_arcs {
            match self.state[a] {
                STATE_LOWER => self.flow[a] = 0.0,
                STATE_UPPER => {
                    if !self.cap[a].is_finite() {
                        return false;
                    }
                    self.flow[a] = self.cap[a];
                }
                _ => continue,
            }
            if self.flow[a] != 0.0 {
                self.excess[self.to[a]] += self.flow[a];
                self.excess[self.from[a]] -= self.flow[a];
            }
        }
        // Leaf elimination in canonical order: the tree arc of each node
        // absorbs the node's residual imbalance.
        self.elim_order.clear();
        self.elim_order.extend(0..n);
        {
            let depth = &self.depth;
            self.elim_order
                .sort_unstable_by_key(|&v| (std::cmp::Reverse(depth[v]), v));
        }
        let mut rehung = false;
        for i in 0..self.elim_order.len() {
            let v = self.elim_order[i];
            let arc = self.pred[v];
            if arc == usize::MAX {
                return false;
            }
            let up = self.parent[v];
            // `excess[v]` must be cancelled by the tree arc's flow.
            let f_req = if self.from[arc] == v {
                // v → parent: flow f contributes -f at v.
                self.excess[v]
            } else {
                // parent → v: flow f contributes +f at v.
                -self.excess[v]
            };
            if f_req < -eps_flow || f_req > self.cap[arc] + eps_flow {
                if !repair {
                    return false;
                }
                // The old tree arc can't carry what conservation demands:
                // pin it at the bound it broke, hand the leftover to an
                // artificial, and re-hang `v` directly under the root.
                let f_clamp = f_req.clamp(0.0, self.cap[arc]);
                self.state[arc] = if f_clamp == 0.0 {
                    STATE_LOWER
                } else {
                    STATE_UPPER
                };
                self.flow[arc] = f_clamp;
                // Leftover at `v` (after the clamped arc's contribution):
                // positive must flow v → root, negative root → v.
                let leftover = if self.from[arc] == v {
                    self.excess[v] - f_clamp
                } else {
                    self.excess[v] + f_clamp
                };
                let art = if leftover >= 0.0 {
                    up_base + v
                } else {
                    down_base + v
                };
                self.state[art] = STATE_TREE;
                self.flow[art] = leftover.abs();
                if up != usize::MAX {
                    let list = &mut self.children[up];
                    if let Some(pos) = list.iter().position(|&c| c == v) {
                        list.swap_remove(pos);
                    }
                }
                self.parent[v] = root;
                self.pred[v] = art;
                self.children[root].push(v);
                rehung = true;
                // The clamped flow still reaches the old parent; the
                // artificial's flow cancels at the root by construction.
                if self.from[arc] == v {
                    self.excess[up] += f_clamp;
                } else {
                    self.excess[up] -= f_clamp;
                }
                // Either orientation delivers `leftover` to the root's
                // balance: `v → root` receives it, `root → v` sends its
                // negation.
                self.excess[root] += leftover;
                continue;
            }
            let f = f_req.clamp(0.0, self.cap[arc]);
            self.flow[arc] = f;
            if self.from[arc] == v {
                self.excess[up] += f;
            } else {
                self.excess[up] -= f;
            }
        }
        if self.excess[root].abs() > eps_flow.max(1e-6) {
            return false;
        }
        if rehung {
            // Depths of re-hung subtrees are stale; recompute all of them
            // from the (children-consistent) tree in one walk.
            self.depth[root] = 0;
            self.dfs_stack.clear();
            self.dfs_stack.push(root);
            while let Some(u) = self.dfs_stack.pop() {
                for i in 0..self.children[u].len() {
                    let v = self.children[u][i];
                    self.depth[v] = self.depth[u] + 1;
                    self.dfs_stack.push(v);
                }
            }
        }
        // Potentials from the tree (costs may have changed).
        self.pi.resize(n + 1, 0.0);
        self.pi2.resize(n + 1, 0.0);
        self.pi[root] = 0.0;
        self.pi2[root] = 0.0;
        self.dfs_stack.clear();
        self.dfs_stack.push(root);
        while let Some(u) = self.dfs_stack.pop() {
            for i in 0..self.children[u].len() {
                let v = self.children[u][i];
                let arc = self.pred[v];
                if self.from[arc] == v {
                    // rc = cost + pi[v] - pi[u] = 0
                    self.pi[v] = self.pi[u] - self.cost[arc];
                    self.pi2[v] = self.pi2[u] - self.cost2[arc];
                } else {
                    self.pi[v] = self.pi[u] + self.cost[arc];
                    self.pi2[v] = self.pi2[u] + self.cost2[arc];
                }
                self.dfs_stack.push(v);
            }
        }
        true
    }

    /// Block pricing: the most violating reduced cost in the first block
    /// containing any eligible arc.  With `lex` off (phase 1, the bulk of
    /// the solve) only the primary channel is priced, exactly as a plain
    /// network simplex would.  With `lex` on (phase 2) an arc is also
    /// eligible when its primary reduced cost is a tie (within `eps_cost`)
    /// and the secondary integer channel strictly improves, and candidates
    /// compare lexicographically — this is what walks the tied optimal face
    /// to its unique vertex.  The secondary channel is only computed for
    /// arcs that survive the primary filter, so phase 2's extra cost is
    /// proportional to the tie structure, not to the arc count.  Returns the
    /// entering arc and the push direction (+1: along the arc, -1: against
    /// it).
    fn find_entering(&mut self, eps_cost: f64, lex: bool) -> Option<(usize, i8)> {
        let m = self.from.len();
        if m == 0 {
            return None;
        }
        let block = ((m as f64).sqrt() as usize).max(16);
        let mut best: Option<(usize, f64, f64)> = None;
        let mut pos = self.block_pos % m;
        let mut scanned = 0;
        while scanned < m {
            let chunk = block.min(m - scanned);
            for _ in 0..chunk {
                let a = pos;
                pos = (pos + 1) % m;
                scanned += 1;
                let s = self.state[a];
                if s == STATE_TREE || self.cap[a] <= 0.0 {
                    continue;
                }
                let rc = self.cost[a] + self.pi[self.from[a]] - self.pi[self.to[a]];
                // An arc at lower bound is eligible when rc < -eps, one at
                // upper bound when rc > eps: uniformly, -state·rc > eps.
                let v1 = -(s as f64) * rc;
                let eligible_primary = v1 > eps_cost;
                if !eligible_primary && (!lex || v1 <= -eps_cost) {
                    continue;
                }
                // The secondary channel is only computed for arcs that
                // survived the primary filter — in phase 1 that is a
                // handful per block, so steering *candidate selection* by
                // it (which nudges phase 1 towards the canonical vertex and
                // keeps the phase-2 walk short) costs almost nothing.  On a
                // primary tie (|v1| ≤ eps, phase 2 only) it also decides
                // eligibility: integer arithmetic, a true violation is ≥ 1.
                let v2 =
                    -(s as f64) * (self.cost2[a] + self.pi2[self.from[a]] - self.pi2[self.to[a]]);
                if !eligible_primary && v2 <= 0.5 {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some((_, b1, b2)) => v1 > b1 + eps_cost || (v1 > b1 - eps_cost && v2 > b2),
                };
                if better {
                    best = Some((a, v1, v2));
                }
            }
            if best.is_some() {
                break;
            }
        }
        self.block_pos = pos;
        // The push direction equals the state sign: from the lower bound the
        // flow increases along the arc, from the upper bound it decreases.
        best.map(|(a, _, _)| (a, self.state[a]))
    }

    /// Lowest common ancestor of `a` and `b` under the current tree.
    fn join(&self, mut a: usize, mut b: usize) -> usize {
        while self.depth[a] > self.depth[b] {
            a = self.parent[a];
        }
        while self.depth[b] > self.depth[a] {
            b = self.parent[b];
        }
        while a != b {
            a = self.parent[a];
            b = self.parent[b];
        }
        a
    }

    /// Residual capacity of the tree arc above `x` when pushing *towards*
    /// the root (`up == true`) or away from it.
    fn tree_residual(&self, x: usize, up: bool) -> f64 {
        let arc = self.pred[x];
        let along = (self.from[arc] == x) == up;
        if along {
            self.cap[arc] - self.flow[arc]
        } else {
            self.flow[arc]
        }
    }

    /// One pivot on entering arc `e` pushed in direction `dir`.
    fn pivot(&mut self, e: usize, dir: i8) {
        // Push direction along the cycle: first --e--> second, then back
        // through the tree second → join → first.
        let (first, second) = if dir > 0 {
            (self.from[e], self.to[e])
        } else {
            (self.to[e], self.from[e])
        };
        let join = self.join(first, second);

        // Ratio test.  The entering arc's own residual:
        let mut delta = if dir > 0 {
            self.cap[e] - self.flow[e]
        } else {
            self.flow[e]
        };
        let mut leaving: Option<(usize, Side)> = None;
        // First-side path (join → … → first): augmentation runs *down*
        // (away from the root), i.e. against the upward walk.
        let mut x = first;
        while x != join {
            let r = self.tree_residual(x, false);
            if r < delta {
                delta = r;
                leaving = Some((x, Side::First));
            }
            x = self.parent[x];
        }
        // Second-side path (second → … → join): augmentation runs *up*.
        // `<=` (not `<`) implements the strongly-feasible tie-break.
        let mut x = second;
        while x != join {
            let r = self.tree_residual(x, true);
            if r <= delta {
                delta = r;
                leaving = Some((x, Side::Second));
            }
            x = self.parent[x];
        }

        // Augment.
        if delta > 0.0 {
            self.flow[e] += (dir as f64) * delta;
            let mut x = first;
            while x != join {
                let arc = self.pred[x];
                if self.from[arc] == x {
                    self.flow[arc] -= delta; // down-push against v→parent
                } else {
                    self.flow[arc] += delta;
                }
                x = self.parent[x];
            }
            let mut x = second;
            while x != join {
                let arc = self.pred[x];
                if self.from[arc] == x {
                    self.flow[arc] += delta; // up-push along v→parent
                } else {
                    self.flow[arc] -= delta;
                }
                x = self.parent[x];
            }
        }

        let Some((x_out, side)) = leaving else {
            // The entering arc itself hit its opposite bound: bound flip.
            self.state[e] = -dir;
            self.flow[e] = self.flow[e].clamp(0.0, self.cap[e]);
            return;
        };

        // Basis exchange: `pred[x_out]` leaves (at whichever bound it hit),
        // `e` enters.  The subtree detached at `x_out` contains `first` when
        // the blocking arc was on the first side, `second` otherwise; it is
        // re-hung from the entering arc.
        let out_arc = self.pred[x_out];
        let at_upper = (self.cap[out_arc] - self.flow[out_arc]).abs() <= self.flow[out_arc].abs();
        self.state[out_arc] = if at_upper { STATE_UPPER } else { STATE_LOWER };
        self.flow[out_arc] = if at_upper { self.cap[out_arc] } else { 0.0 };
        self.state[e] = STATE_TREE;

        let (z, w) = match side {
            Side::First => (first, second),
            Side::Second => (second, first),
        };

        // Reverse the parent pointers on the path z → x_out, attaching z
        // under w via the entering arc.
        self.path_nodes.clear();
        self.path_preds.clear();
        let mut x = z;
        loop {
            self.path_nodes.push(x);
            self.path_preds.push(self.pred[x]);
            if x == x_out {
                break;
            }
            x = self.parent[x];
        }
        let mut new_parent = w;
        let mut new_pred = e;
        for i in 0..self.path_nodes.len() {
            let node = self.path_nodes[i];
            let old_parent = self.parent[node];
            // Detach from the old parent's child list.
            if old_parent != usize::MAX {
                let list = &mut self.children[old_parent];
                if let Some(pos) = list.iter().position(|&c| c == node) {
                    list.swap_remove(pos);
                }
            }
            self.parent[node] = new_parent;
            self.pred[node] = new_pred;
            self.children[new_parent].push(node);
            new_parent = node;
            new_pred = self.path_preds[i];
        }

        // Depths and potentials of the re-hung subtree (and only it).
        self.dfs_stack.clear();
        self.dfs_stack.push(z);
        while let Some(u) = self.dfs_stack.pop() {
            let p = self.parent[u];
            let arc = self.pred[u];
            self.depth[u] = self.depth[p] + 1;
            if self.from[arc] == u {
                self.pi[u] = self.pi[p] - self.cost[arc];
                self.pi2[u] = self.pi2[p] - self.cost2[arc];
            } else {
                self.pi[u] = self.pi[p] + self.cost[arc];
                self.pi2[u] = self.pi2[p] + self.cost2[arc];
            }
            for i in 0..self.children[u].len() {
                let c = self.children[u][i];
                self.dfs_stack.push(c);
            }
        }
    }

    /// Runs the pivot loop to lexicographic optimality: phase 1 prices the
    /// primary channel only until no primary violation remains, then phase 2
    /// (primary *and* secondary) walks the tied optimal face to its unique
    /// vertex.  Phase 2's entering rule subsumes phase 1's, so any primary
    /// violation resurfacing within phase 2 (they stay within `eps` of
    /// optimal — face pivots move potentials by at most the tie tolerance)
    /// is still picked up; splitting merely keeps the secondary pricing off
    /// the hot part of the solve.  Returns `false` when the pivot budget
    /// blows up (caller falls back to the reference kernel).
    fn optimize(&mut self, eps_cost: f64) -> bool {
        let m = self.from.len();
        let budget = 200 * m + 2_000;
        let mut spent = 0usize;
        for lex in [false, true] {
            loop {
                if spent >= budget {
                    return false;
                }
                spent += 1;
                match self.find_entering(eps_cost, lex) {
                    Some((e, dir)) => {
                        self.pivot(e, dir);
                        #[cfg(feature = "invariant-audit")]
                        self.audit_basis("pivot");
                    }
                    None => break,
                }
            }
        }
        true
    }

    /// Canonicalises the optimal solution so the emitted bytes depend only
    /// on the *vertex* the pivot loop reached, not on the pivot history:
    ///
    /// 1. every arc is re-classified from its flow (at lower bound / at
    ///    upper bound / strictly between — the *free* arcs, which form a
    ///    forest at any vertex);
    /// 2. the free forest is completed into a canonical spanning tree (arc
    ///    index order, artificial arcs last) by the same union–find repair
    ///    as the cross-event remap;
    /// 3. flows and potentials are re-derived from that canonical basis by
    ///    [`Self::warm_basis`]'s deterministic conservation pass.
    ///
    /// Two pivot paths reaching the same optimum — a warm-started and a cold
    /// solve, say — thereby produce bit-identical flows, and the basis
    /// remembered for the next event is canonical too.  If re-derivation
    /// fails (pathological numerics), the incremental result is restored:
    /// canonicalisation is a determinism device, never a correctness risk.
    fn canonicalize(&mut self, eps_flow: f64) {
        self.state_backup.clone_from(&self.state);
        self.flow_backup.clone_from(&self.flow);
        for a in 0..self.from.len() {
            let f = self.flow[a];
            let c = self.cap[a];
            self.state[a] = if f <= eps_flow {
                STATE_LOWER
            } else if c.is_finite() && f >= c - eps_flow {
                STATE_UPPER
            } else {
                STATE_TREE
            };
        }
        // Fast path: when the classification reproduces the final basis
        // exactly, the vertex is nondegenerate there — its basis is unique,
        // hence already start-independent — and only the flows need the
        // canonical re-derivation (on the tree arrays optimize() left
        // behind, which are still valid).
        let rebuilt = if self.state == self.state_backup {
            true
        } else {
            let up_base = self.from.len() - 2 * self.num_nodes;
            repair_spanning_tree(
                &mut self.uf,
                &self.from,
                &self.to,
                self.num_nodes,
                up_base,
                &mut self.state,
            );
            self.rebuild_tree_from_states()
        };
        if !rebuilt || !self.warm_basis(eps_flow, false) {
            // Restore the incremental (correct, merely path-dependent)
            // solution and its actual basis.
            self.state.clone_from(&self.state_backup);
            self.flow.clone_from(&self.flow_backup);
            let _ = self.rebuild_tree_from_states();
        }
    }

    /// Scale-aware comparison tolerances of the loaded instance.
    fn tolerances(&self) -> (f64, f64) {
        let max_cap = self
            .cap
            .iter()
            .filter(|c| c.is_finite())
            .fold(0.0f64, |m, &c| m.max(c));
        let eps_flow = 1e-9 * (1.0 + max_cap);
        let max_cost = self.cost.iter().fold(0.0f64, |m, &c| m.max(c.abs()));
        let eps_cost = 1e-11 * (1.0 + max_cost);
        (eps_flow, eps_cost)
    }

    /// Full well-formedness audit of the current spanning-tree basis
    /// (feature `invariant-audit`): exactly `n` tree arcs spanning the
    /// `n + 1` nodes, consistent `parent`/`pred`/`depth` arrays, every
    /// nonbasic arc at the bound its state claims, tree flows within
    /// bounds, and zero reduced cost on tree arcs in both lexicographic
    /// channels.  Tolerances are looser than the pivot tolerances so the
    /// audit can never fire on benign rounding — only on a structurally
    /// broken basis, which would silently break the bit-identity contract.
    #[cfg(feature = "invariant-audit")]
    fn audit_basis(&self, context: &str) {
        use crate::audit::fail;
        let n = self.num_nodes;
        let root = n;
        let m = self.from.len();
        let max_cap = self
            .cap
            .iter()
            .filter(|c| c.is_finite())
            .fold(0.0f64, |a, &c| a.max(c));
        let eps_flow = 1e-6 * (1.0 + max_cap);
        let max_cost = self.cost.iter().fold(0.0f64, |a, &c| a.max(c.abs()));
        let max_pi = self.pi.iter().fold(0.0f64, |a, &p| a.max(p.abs()));
        let eps_rc = 1e-7 * (1.0 + max_cost + max_pi);

        let tree_arcs = self.state.iter().filter(|&&s| s == STATE_TREE).count();
        if tree_arcs != n {
            fail(
                "simplex-basis",
                &format!("{context}: {tree_arcs} tree arcs for {n} real nodes (want {n})"),
            );
        }
        for v in 0..n {
            let p = self.parent[v];
            let a = self.pred[v];
            if p == usize::MAX || a == usize::MAX || a >= m {
                fail(
                    "simplex-basis",
                    &format!("{context}: node {v} has no tree attachment"),
                );
            }
            if self.state[a] != STATE_TREE {
                fail(
                    "simplex-basis",
                    &format!("{context}: pred arc {a} of node {v} is not in the tree"),
                );
            }
            let (af, at) = (self.from[a], self.to[a]);
            if !((af == v && at == p) || (af == p && at == v)) {
                fail(
                    "simplex-basis",
                    &format!("{context}: pred arc {a} ({af}->{at}) does not join {v} to {p}"),
                );
            }
            if self.depth[v] != self.depth[p] + 1 {
                fail(
                    "simplex-basis",
                    &format!(
                        "{context}: depth[{v}] = {} but depth[parent {p}] = {}",
                        self.depth[v], self.depth[p]
                    ),
                );
            }
            let rc = self.cost[a] + self.pi[af] - self.pi[at];
            if rc.abs() > eps_rc {
                fail(
                    "simplex-basis",
                    &format!("{context}: tree arc {a} has reduced cost {rc:+.3e}"),
                );
            }
            // The secondary channel is exact integer arithmetic in f64, so
            // a fixed absolute tolerance suffices.
            let rc2 = self.cost2[a] + self.pi2[af] - self.pi2[at];
            if rc2.abs() > 1e-6 {
                fail(
                    "simplex-basis",
                    &format!("{context}: tree arc {a} has secondary reduced cost {rc2:+.3e}"),
                );
            }
        }
        if self.depth[root] != 0 {
            fail(
                "simplex-basis",
                &format!("{context}: root depth is {}", self.depth[root]),
            );
        }
        for a in 0..m {
            let f = self.flow[a];
            let c = self.cap[a];
            let bad = match self.state[a] {
                STATE_LOWER => f.abs() > eps_flow,
                STATE_UPPER => !c.is_finite() || (f - c).abs() > eps_flow,
                _ => f < -eps_flow || (c.is_finite() && f > c + eps_flow),
            };
            if bad {
                fail(
                    "simplex-basis",
                    &format!(
                        "{context}: arc {a} (state {}) carries {f:.6e} of capacity {c:.6e}",
                        self.state[a]
                    ),
                );
            }
        }
    }

    /// Installs a caller-supplied **start vertex** over the loaded arc
    /// arrays: `seed[a]` is the flow on real arc `a` of a maximum flow (the
    /// seed must ship the full source outflow, so the return arc saturates).
    /// States are re-classified from the seed flows, the free arcs are
    /// completed into a spanning tree by the canonical union–find repair,
    /// and flows/potentials are re-derived by the deterministic conservation
    /// pass.  Returns `false` when the seed does not yield a usable basis
    /// (caller crashes fresh — correctness never depends on the seed).
    ///
    /// This is the entry point of [`crate::monge::MongeBackend`]: a greedy
    /// kernel hands its allocation here, replacing the phase-1 pivot
    /// sequence, and the shared [`Self::run_to_optimum`] tail guarantees the
    /// result is the same canonical optimum any other start basis reaches.
    fn install_seed(&mut self, seed: &[f64], eps_flow: f64) -> bool {
        let n = self.num_nodes;
        let num_arcs = self.from.len();
        let m_real = num_arcs - 1 - 2 * n;
        if seed.len() != m_real {
            return false;
        }
        self.flow[..m_real].copy_from_slice(seed);
        // The seed ships the maximum flow, so the return arc is saturated
        // and every artificial root arc is empty.
        self.flow[m_real] = self.cap[m_real];
        self.flow[m_real + 1..].iter_mut().for_each(|f| *f = 0.0);
        self.state.clear();
        self.state.resize(num_arcs, STATE_LOWER);
        for a in 0..num_arcs {
            let f = self.flow[a];
            let c = self.cap[a];
            if f < -eps_flow || (c.is_finite() && f > c + eps_flow) {
                return false;
            }
            self.state[a] = if f <= eps_flow {
                STATE_LOWER
            } else if c.is_finite() && f >= c - eps_flow {
                STATE_UPPER
            } else {
                STATE_TREE
            };
        }
        let up_base = num_arcs - 2 * n;
        repair_spanning_tree(
            &mut self.uf,
            &self.from,
            &self.to,
            n,
            up_base,
            &mut self.state,
        );
        self.rebuild_tree_from_states() && self.warm_basis(eps_flow, true)
    }

    /// The shared tail of every solve: pivot to the unique lexicographic
    /// optimum, canonicalise, remember the basis for the next event, and
    /// write the flow back — identical whatever basis the solve started
    /// from, which is what makes seeded, warm-started and cold solves
    /// bit-identical.
    #[allow(clippy::too_many_arguments)] // the three entry points share it
    fn run_to_optimum(
        &mut self,
        network: &mut FlowNetwork,
        source: usize,
        sink: usize,
        target: f64,
        workspace: &mut FlowWorkspace,
        warmed: bool,
        eps_flow: f64,
        eps_cost: f64,
    ) -> MinCostResult {
        self.basis_valid = false; // invalidated until this solve completes
        self.block_pos = 0; // stateless pricing: per-solve determinism
        let had_hint = self.hint_valid;
        self.hint_valid = false;
        if !self.optimize(eps_cost) {
            // Pathological numerics: certified fallback to the reference
            // kernel on a clean network.  The basis memory is dropped — the
            // reference solution is not a basis this backend could resume.
            self.fallbacks += 1;
            self.remap.invalidate();
            network.reset();
            return min_cost_flow_up_to(network, source, sink, target, workspace);
        }
        self.canonicalize(eps_flow);
        #[cfg(feature = "invariant-audit")]
        self.audit_basis("canonicalize");
        self.basis_valid = true;
        if had_hint && self.warm_start {
            self.remap
                .remember(&self.hint, &self.from, &self.to, &self.state);
        } else {
            // Cross-solve memory disabled, or this solve's nodes carry no
            // stable identity to key a cross-event remap by.
            self.remap.invalidate();
        }
        let (flow, cost) = self.extract(network);
        MinCostResult {
            flow,
            cost,
            augmentations: 0,
            phases: if warmed { 0 } else { 1 },
        }
    }

    /// [`MinCostBackend::solve_up_to`] from a caller-supplied start vertex:
    /// `seed[a]` is the flow a maximum-flow solution routes on real arc `a`
    /// (forward-edge order).  The seed replaces the warm-start tiers as the
    /// start basis; the solve then runs the exact same verification /
    /// lexicographic face walk / canonicalisation tail as every other path,
    /// so the result is **bit-identical** to an unseeded solve of the same
    /// instance — an invalid seed merely costs a crash-basis restart.
    pub(crate) fn solve_up_to_seeded(
        &mut self,
        network: &mut FlowNetwork,
        source: usize,
        sink: usize,
        target: f64,
        workspace: &mut FlowWorkspace,
        seed: &[f64],
    ) -> MinCostResult {
        assert!(source < network.num_nodes() && sink < network.num_nodes());
        assert_ne!(source, sink);
        if target <= 0.0 {
            self.hint_valid = false;
            return MinCostResult {
                flow: 0.0,
                cost: 0.0,
                augmentations: 0,
                phases: 0,
            };
        }
        let _ = self.load(network, source, sink);
        let (eps_flow, eps_cost) = self.tolerances();
        let seeded = self.install_seed(seed, eps_flow);
        if !seeded {
            self.crash_basis();
        }
        #[cfg(feature = "invariant-audit")]
        self.audit_basis(if seeded { "monge-seed" } else { "crash-basis" });
        self.run_to_optimum(
            network, source, sink, target, workspace, seeded, eps_flow, eps_cost,
        )
    }

    /// Writes the computed flow back into the residual network and sums the
    /// objective over the real arcs (fixed order: bit-reproducible).
    fn extract(&self, network: &mut FlowNetwork) -> (f64, f64) {
        let m_real = network.num_edges();
        let mut cost = 0.0;
        for a in 0..m_real {
            let f = self.flow[a].clamp(0.0, self.cap[a]);
            if f > FLOW_EPS {
                network.push(2 * a, f);
                cost += f * self.cost[a];
            }
        }
        (self.flow[m_real], cost) // return arc carries the s→t value
    }
}

impl MinCostBackend for NetworkSimplexBackend {
    fn name(&self) -> &'static str {
        "simplex"
    }

    fn warm_hint(&mut self, node_keys: &[u64]) {
        // Stored even when cross-solve reuse is disabled: the keys also
        // seed the lexicographic tie-break of the *next* solve, which must
        // be identical between a warm and a cold backend fed the same
        // instance (the bit-identity contract).
        self.hint.clear();
        self.hint.extend_from_slice(node_keys);
        self.hint_valid = true;
    }

    fn solve_up_to(
        &mut self,
        network: &mut FlowNetwork,
        source: usize,
        sink: usize,
        target: f64,
        workspace: &mut FlowWorkspace,
    ) -> MinCostResult {
        assert!(source < network.num_nodes() && sink < network.num_nodes());
        assert_ne!(source, sink);
        if target <= 0.0 {
            // A hint pending for this (skipped) solve must not leak into
            // the next instance's tie-break or remap keying.
            self.hint_valid = false;
            return MinCostResult {
                flow: 0.0,
                cost: 0.0,
                augmentations: 0,
                phases: 0,
            };
        }
        let path = self.load(network, source, sink);
        let (eps_flow, eps_cost) = self.tolerances();

        let warmed = match path {
            WarmPath::Exact => self.warm_basis(eps_flow, true),
            WarmPath::Remap => {
                let ok = self.apply_remap() && self.warm_basis(eps_flow, true);
                if ok {
                    // Counted only once the re-priming accepted the basis:
                    // a rejected remap runs cold and must not show up in
                    // the diagnostic the vacuity guards assert on.
                    self.remapped_solves += 1;
                }
                ok
            }
            WarmPath::Cold => false,
        };
        if !warmed {
            self.crash_basis();
        }
        #[cfg(feature = "invariant-audit")]
        self.audit_basis(if warmed { "warm-start" } else { "crash-basis" });
        self.run_to_optimum(
            network, source, sink, target, workspace, warmed, eps_flow, eps_cost,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mincost::min_cost_max_flow;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6 * (1.0 + a.abs().max(b.abs()))
    }

    /// Runs both backends on identically-built networks and checks they
    /// agree on flow value and cost.
    fn assert_backends_agree(build: impl Fn() -> FlowNetwork, s: usize, t: usize) {
        let mut g_ref = build();
        let reference = min_cost_max_flow(&mut g_ref, s, t);
        let mut g_ns = build();
        let mut ns = NetworkSimplexBackend::new();
        let r = ns.solve_up_to(&mut g_ns, s, t, f64::INFINITY, &mut FlowWorkspace::new());
        assert_eq!(ns.fallback_count(), 0, "simplex fell back");
        assert!(
            close(r.flow, reference.flow),
            "flow {} vs reference {}",
            r.flow,
            reference.flow
        );
        assert!(
            close(r.cost, reference.cost),
            "cost {} vs reference {}",
            r.cost,
            reference.cost
        );
        // The flow left in the network is conserved and within capacity.
        for a in 0..g_ns.num_edges() {
            let f = g_ns.flow_on(2 * a);
            assert!(f >= -1e-9 && f <= g_ref.edge(2 * a).original_cap + 1e-9);
        }
    }

    #[test]
    fn agrees_on_two_parallel_routes() {
        assert_backends_agree(
            || {
                let mut g = FlowNetwork::new(4);
                g.add_edge(0, 1, 1.0, 0.0);
                g.add_edge(1, 3, 1.0, 1.0);
                g.add_edge(0, 2, 1.0, 0.0);
                g.add_edge(2, 3, 1.0, 5.0);
                g
            },
            0,
            3,
        );
    }

    #[test]
    fn agrees_on_fractional_split() {
        assert_backends_agree(
            || {
                let mut g = FlowNetwork::new(3);
                g.add_edge(0, 1, 1.0, 0.0);
                g.add_edge(1, 2, 0.4, 1.0);
                g.add_edge(1, 2, 10.0, 2.0);
                g
            },
            0,
            2,
        );
    }

    #[test]
    fn agrees_when_negative_costs_are_present() {
        assert_backends_agree(
            || {
                let mut g = FlowNetwork::new(4);
                g.add_edge(0, 1, 1.0, 0.0);
                g.add_edge(1, 3, 1.0, -2.0);
                g.add_edge(0, 2, 1.0, 0.0);
                g.add_edge(2, 3, 1.0, 4.0);
                g
            },
            0,
            3,
        );
    }

    #[test]
    fn empty_network_ships_nothing() {
        let mut g = FlowNetwork::new(2);
        let mut ns = NetworkSimplexBackend::new();
        let r = ns.solve_up_to(&mut g, 0, 1, f64::INFINITY, &mut FlowWorkspace::new());
        assert!(close(r.flow, 0.0) && close(r.cost, 0.0));
    }

    #[test]
    fn agrees_on_random_transportation_networks() {
        // Deterministic pseudo-random bipartite instances (mixed congruential
        // stream), shaped like the scheduler's: source → jobs → bins → sink.
        let mut seed = 0x9E37_79B9u64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64) / (1u64 << 31) as f64
        };
        for case in 0..40 {
            let jobs = 1 + case % 5;
            let bins = 1 + (case / 2) % 6;
            let mut demands = Vec::new();
            let mut caps = Vec::new();
            let mut routes = Vec::new();
            for _ in 0..jobs {
                demands.push(0.25 + 4.0 * next());
            }
            for _ in 0..bins {
                caps.push(0.25 + 5.0 * next());
            }
            for j in 0..jobs {
                for b in 0..bins {
                    if next() < 0.7 {
                        routes.push((j, b, 5.0 * next()));
                    }
                }
            }
            let build = || {
                let s = jobs + bins;
                let t = s + 1;
                let mut g = FlowNetwork::new(jobs + bins + 2);
                for (j, &d) in demands.iter().enumerate() {
                    g.add_edge(s, j, d, 0.0);
                }
                for (b, &c) in caps.iter().enumerate() {
                    g.add_edge(jobs + b, t, c, 0.0);
                }
                for &(j, b, cost) in &routes {
                    g.add_edge(j, jobs + b, demands[j], cost);
                }
                g
            };
            assert_backends_agree(build, jobs + bins, jobs + bins + 1);
        }
    }

    #[test]
    fn warm_start_matches_cold_solves_across_capacity_and_cost_moves() {
        // Same topology, shifting capacities/costs: the second and third
        // solves take the warm path and must match fresh-backend solves.
        let build = |scale: f64, cost: f64| {
            let mut g = FlowNetwork::new(5);
            g.add_edge(0, 1, 2.0 * scale, 0.0);
            g.add_edge(0, 2, 3.0 * scale, 0.0);
            g.add_edge(1, 3, 2.0 * scale, cost);
            g.add_edge(2, 3, 3.0 * scale, 2.0 * cost);
            g.add_edge(3, 4, 4.0 * scale, 0.0);
            g
        };
        let mut shared = NetworkSimplexBackend::new();
        let mut ws = FlowWorkspace::new();
        for (scale, cost) in [(1.0, 1.0), (0.5, 3.0), (2.0, 0.25), (2.0, 0.25)] {
            let mut g_warm = build(scale, cost);
            let warm = shared.solve_up_to(&mut g_warm, 0, 4, f64::INFINITY, &mut ws);
            let mut g_cold = build(scale, cost);
            let cold = NetworkSimplexBackend::new().solve_up_to(
                &mut g_cold,
                0,
                4,
                f64::INFINITY,
                &mut FlowWorkspace::new(),
            );
            assert!(
                close(warm.flow, cold.flow),
                "{} vs {}",
                warm.flow,
                cold.flow
            );
            assert!(
                close(warm.cost, cold.cost),
                "{} vs {}",
                warm.cost,
                cold.cost
            );
        }
        assert_eq!(shared.fallback_count(), 0);
    }

    #[test]
    fn topology_change_invalidates_the_warm_basis() {
        let mut ns = NetworkSimplexBackend::new();
        let mut ws = FlowWorkspace::new();
        let mut g1 = FlowNetwork::new(3);
        g1.add_edge(0, 1, 1.0, 1.0);
        g1.add_edge(1, 2, 1.0, 1.0);
        let r1 = ns.solve_up_to(&mut g1, 0, 2, f64::INFINITY, &mut ws);
        assert!(close(r1.flow, 1.0));
        // Different arc set: must not reuse the basis (and must stay right).
        let mut g2 = FlowNetwork::new(4);
        g2.add_edge(0, 1, 2.0, 1.0);
        g2.add_edge(0, 2, 2.0, 3.0);
        g2.add_edge(1, 3, 1.0, 0.0);
        g2.add_edge(2, 3, 2.0, 0.0);
        let r2 = ns.solve_up_to(&mut g2, 0, 3, f64::INFINITY, &mut ws);
        let mut g2b = FlowNetwork::new(4);
        g2b.add_edge(0, 1, 2.0, 1.0);
        g2b.add_edge(0, 2, 2.0, 3.0);
        g2b.add_edge(1, 3, 1.0, 0.0);
        g2b.add_edge(2, 3, 2.0, 0.0);
        let reference = min_cost_max_flow(&mut g2b, 0, 3);
        assert!(close(r2.flow, reference.flow));
        assert!(close(r2.cost, reference.cost));
    }

    /// Builds a jobs × bins transportation network from explicit routes,
    /// with stable keys `job_keys[j]` / `bin_keys[b]` for the remap tests.
    fn keyed_transport(
        demands: &[f64],
        caps: &[f64],
        routes: &[(usize, usize, f64)],
    ) -> (FlowNetwork, Vec<u64>, usize, usize) {
        let (nj, nb) = (demands.len(), caps.len());
        let s = nj + nb;
        let t = s + 1;
        let mut g = FlowNetwork::new(nj + nb + 2);
        for (j, &d) in demands.iter().enumerate() {
            g.add_edge(s, j, d, 0.0);
        }
        for (b, &c) in caps.iter().enumerate() {
            g.add_edge(nj + b, t, c, 0.0);
        }
        for &(j, b, cost) in routes {
            g.add_edge(j, nj + b, demands[j], cost);
        }
        let keys = Vec::new();
        (g, keys, s, t)
    }

    #[test]
    fn remapped_solves_take_the_warm_tier_and_stay_bit_identical_to_cold() {
        // Event 1: jobs {10, 11} over bins {b0, b1}.  Event 2: job 10
        // completed, job 12 arrived — different topology, overlapping keys.
        // The shared backend must take the remap tier on event 2 and agree
        // *bitwise* with a fresh cold backend.
        let e1_demands = [2.0, 3.0];
        let e1_caps = [2.5, 4.0];
        let e1_routes = [(0, 0, 1.0), (0, 1, 2.0), (1, 0, 1.5), (1, 1, 0.5)];
        let e1_keys: Vec<u64> = vec![10, 11, 1 << 32, (1 << 32) | 1, u64::MAX - 1, u64::MAX - 2];
        // One fewer route than event 1: the arc list differs, so only the
        // key-based remap tier (not the exact-topology tier) can fire.
        let e2_demands = [3.0, 1.0];
        let e2_caps = [2.5, 4.0];
        let e2_routes = [(0, 0, 1.5), (0, 1, 0.5), (1, 1, 2.0)];
        let e2_keys: Vec<u64> = vec![11, 12, 1 << 32, (1 << 32) | 1, u64::MAX - 1, u64::MAX - 2];

        let mut shared = NetworkSimplexBackend::new();
        let mut ws = FlowWorkspace::new();
        let (mut g1, _, s, t) = keyed_transport(&e1_demands, &e1_caps, &e1_routes);
        shared.warm_hint(&e1_keys);
        shared.solve_up_to(&mut g1, s, t, f64::INFINITY, &mut ws);
        assert_eq!(shared.remap_count(), 0);

        let (mut g2, _, s, t) = keyed_transport(&e2_demands, &e2_caps, &e2_routes);
        shared.warm_hint(&e2_keys);
        let warm = shared.solve_up_to(&mut g2, s, t, f64::INFINITY, &mut ws);
        assert_eq!(shared.remap_count(), 1, "event 2 must take the remap tier");
        assert_eq!(shared.fallback_count(), 0);

        let (mut g2c, _, s, t) = keyed_transport(&e2_demands, &e2_caps, &e2_routes);
        let mut cold = NetworkSimplexBackend::with_warm_start(false);
        // The cold solve gets the same per-instance hint (it seeds the
        // tie-break, not any cross-solve state).
        cold.warm_hint(&e2_keys);
        let cold_r = cold.solve_up_to(&mut g2c, s, t, f64::INFINITY, &mut FlowWorkspace::new());
        assert_eq!(warm.flow.to_bits(), cold_r.flow.to_bits());
        assert_eq!(warm.cost.to_bits(), cold_r.cost.to_bits());
        for a in 0..g2.num_edges() {
            assert_eq!(
                g2.flow_on(2 * a).to_bits(),
                g2c.flow_on(2 * a).to_bits(),
                "edge {a} flow diverged between remap-warm and cold"
            );
        }
    }

    #[test]
    fn cost_ties_resolve_identically_from_any_start_basis() {
        // Two bins at *identical* cost (the System-(2) same-interval,
        // different-site tie): a warm-started solve arriving with the flow
        // on one bin and a cold solve crashing fresh must still pick the
        // same optimum, because the lexicographic tie-break makes it unique.
        let demands = [2.0];
        let caps = [2.0, 2.0];
        let routes = [(0, 0, 1.0), (0, 1, 1.0)];
        let keys: Vec<u64> = vec![7, 1 << 32, (1 << 32) | 1, u64::MAX - 1, u64::MAX - 2];

        let mut shared = NetworkSimplexBackend::new();
        let mut ws = FlowWorkspace::new();
        // Prime the shared backend with a network whose optimum sits on bin
        // 1 only (bin 0 inadmissible), then re-solve the tied instance warm.
        let primer = [(0, 1, 1.0)];
        let (mut g0, _, s, t) = keyed_transport(&demands, &caps, &primer);
        shared.warm_hint(&keys[..]);
        shared.solve_up_to(&mut g0, s, t, f64::INFINITY, &mut ws);

        let (mut g_warm, _, s, t) = keyed_transport(&demands, &caps, &routes);
        shared.warm_hint(&keys[..]);
        shared.solve_up_to(&mut g_warm, s, t, f64::INFINITY, &mut ws);

        let (mut g_cold, _, s, t) = keyed_transport(&demands, &caps, &routes);
        let mut cold = NetworkSimplexBackend::with_warm_start(false);
        cold.warm_hint(&keys[..]);
        cold.solve_up_to(&mut g_cold, s, t, f64::INFINITY, &mut FlowWorkspace::new());

        for a in 0..g_warm.num_edges() {
            assert_eq!(
                g_warm.flow_on(2 * a).to_bits(),
                g_cold.flow_on(2 * a).to_bits(),
                "tied optimum must be start-basis-independent (edge {a})"
            );
        }
    }

    #[test]
    fn disabled_warm_start_never_reuses_state() {
        let mut ns = NetworkSimplexBackend::with_warm_start(false);
        let mut ws = FlowWorkspace::new();
        let build = || {
            let mut g = FlowNetwork::new(3);
            g.add_edge(0, 1, 2.0, 1.0);
            g.add_edge(1, 2, 2.0, 1.0);
            g
        };
        ns.warm_hint(&[1, 2, 3]); // ignored
        let mut g1 = build();
        let r1 = ns.solve_up_to(&mut g1, 0, 2, f64::INFINITY, &mut ws);
        let mut g2 = build();
        let r2 = ns.solve_up_to(&mut g2, 0, 2, f64::INFINITY, &mut ws);
        assert_eq!(ns.remap_count(), 0);
        assert_eq!(r1.phases, 1, "cold solve");
        assert_eq!(r2.phases, 1, "still cold: reuse disabled");
        assert_eq!(r1.flow.to_bits(), r2.flow.to_bits());
    }
}
