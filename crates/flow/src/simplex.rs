//! A network-simplex backend for the minimum-cost solve.
//!
//! The primal-dual kernel of [`crate::mincost`] is at its constant-factor
//! floor: every phase scans the whole edge set, and on the tie-rich
//! transportation networks of the scheduler most phases move little flow.
//! The network simplex walks the *vertices* of the flow polytope instead:
//! it maintains a spanning-tree basis, prices the nonbasic arcs against the
//! tree's node potentials, and pivots along the unique tree cycle of an
//! eligible arc.  On product-form transportation costs (the System-(2)
//! objective) the admissible structure is exactly what a spanning-tree basis
//! captures, so pivots are few and each one touches only a tree path.
//!
//! Implementation notes:
//!
//! * **Maximum flow via a big-cost return arc.**  The min-cost *max*-flow
//!   semantics of [`crate::backend::MinCostBackend`] are obtained by adding a
//!   `sink → source` arc of cost `-BIG` (with `BIG` dominating any simple
//!   path cost) and solving a zero-supply min-cost circulation, so flow
//!   maximisation and cost minimisation happen in one pivot sequence.
//! * **Strongly feasible basis.**  The initial basis is the star of
//!   artificial root arcs (every node pointing at an artificial root), which
//!   is strongly feasible; the leaving-arc rule breaks ratio-test ties the
//!   standard way (last blocking arc against the cycle orientation), which
//!   preserves strong feasibility and rules out cycling on degenerate
//!   pivots.
//! * **Block pricing.**  The entering arc is the most negative reduced cost
//!   in the first block (of `≈√m` arcs) containing any eligible arc, with a
//!   rolling start position — the standard compromise between Dantzig
//!   pricing and round-robin.
//! * **Warm starts.**  The backend keeps its basis (arc states + tree
//!   arrays) between solves.  When the next network has the same arc
//!   topology — the cross-event case of the on-line schedulers, where only
//!   capacities and costs move — the previous basis is re-primed: nonbasic
//!   flows snap to their bounds, tree flows are recomputed by conservation
//!   (leaf elimination), and the pivot loop resumes from there.  If the old
//!   basis is infeasible under the new capacities the solver falls back to a
//!   fresh crash basis; correctness never depends on the warm start.
//! * **Numerical safety net.**  All comparisons use scale-aware epsilons; if
//!   the pivot budget is ever exhausted (pathological numerics), the backend
//!   resets the network and delegates to the primal-dual reference kernel,
//!   so a degraded instance costs time, not correctness.

use crate::backend::MinCostBackend;
use crate::graph::FlowNetwork;
use crate::mincost::{min_cost_flow_up_to, MinCostResult};
use crate::workspace::FlowWorkspace;
use crate::FLOW_EPS;

/// Nonbasic arc at its lower bound (zero flow).
const STATE_LOWER: i8 = 1;
/// Basic arc (in the spanning tree).
const STATE_TREE: i8 = 0;
/// Nonbasic arc at its upper bound (flow = capacity).
const STATE_UPPER: i8 = -1;

/// Which side of the entering arc's cycle a blocking arc was found on.
#[derive(Clone, Copy, PartialEq)]
enum Side {
    /// The path from the node the augmentation *leaves* the tree towards.
    First,
    /// The path from the node the augmentation *enters* the tree from.
    Second,
}

/// Min-cost max-flow by network simplex; see the module docs.
///
/// Hold one per solver and feed it every instance: scratch memory — and the
/// spanning-tree basis, when the topology repeats — is reused across solves.
pub struct NetworkSimplexBackend {
    // --- arc arrays (real arcs, then the return arc, then root arcs) ---
    from: Vec<usize>,
    to: Vec<usize>,
    cap: Vec<f64>,
    cost: Vec<f64>,
    flow: Vec<f64>,
    state: Vec<i8>,
    // --- spanning tree ---
    parent: Vec<usize>,
    pred: Vec<usize>,
    depth: Vec<usize>,
    children: Vec<Vec<usize>>,
    pi: Vec<f64>,
    // --- warm-start bookkeeping ---
    /// `(from << 32) | to` per real arc of the last solve; the warm start is
    /// attempted only when the next instance matches exactly.
    signature: Vec<u64>,
    /// Node count (excluding the artificial root) of the last solve.
    num_nodes: usize,
    /// `true` when the stored basis belongs to a completed solve.
    basis_valid: bool,
    // --- scratch ---
    path_nodes: Vec<usize>,
    path_preds: Vec<usize>,
    dfs_stack: Vec<usize>,
    excess: Vec<f64>,
    /// Rolling start position of the pricing block.
    block_pos: usize,
    /// Pivot budget blow-ups so far (each one fell back to the reference
    /// kernel); exposed for tests and diagnostics.
    fallbacks: usize,
}

impl Default for NetworkSimplexBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl NetworkSimplexBackend {
    /// Creates a backend with empty scratch (grows on first use).
    pub fn new() -> Self {
        NetworkSimplexBackend {
            from: Vec::new(),
            to: Vec::new(),
            cap: Vec::new(),
            cost: Vec::new(),
            flow: Vec::new(),
            state: Vec::new(),
            parent: Vec::new(),
            pred: Vec::new(),
            depth: Vec::new(),
            children: Vec::new(),
            pi: Vec::new(),
            signature: Vec::new(),
            num_nodes: 0,
            basis_valid: false,
            path_nodes: Vec::new(),
            path_preds: Vec::new(),
            dfs_stack: Vec::new(),
            excess: Vec::new(),
            block_pos: 0,
            fallbacks: 0,
        }
    }

    /// How often the pivot budget blew up and the solve fell back to the
    /// primal-dual reference kernel (diagnostic; should stay at zero).
    pub fn fallback_count(&self) -> usize {
        self.fallbacks
    }

    /// Loads the instance out of `network` (fresh, no flow) into the arc
    /// arrays.  Returns `true` when the arc topology matches the previous
    /// solve (same nodes, same endpoints in order), i.e. the stored basis is
    /// structurally reusable.
    fn load(&mut self, network: &FlowNetwork, source: usize, sink: usize) -> bool {
        let n = network.num_nodes();
        let m_real = network.num_edges();
        let num_arcs = m_real + 1 + n; // + return arc + root arcs
        let mut same_topology = self.basis_valid && self.num_nodes == n;

        self.from.clear();
        self.to.clear();
        self.cap.clear();
        self.cost.clear();
        let mut source_out = 0.0f64;
        for a in 0..m_real {
            let eid = 2 * a;
            let fwd = network.edge(eid);
            let u = network.edge(eid ^ 1).to;
            let v = fwd.to;
            self.from.push(u);
            self.to.push(v);
            self.cap.push(fwd.cap); // network carries no flow: cap == original
            self.cost.push(fwd.cost);
            if u == source {
                source_out += fwd.cap;
            }
            let sig = ((u as u64) << 32) | v as u64;
            if same_topology && self.signature.get(a).copied() != Some(sig) {
                same_topology = false;
            }
        }
        if same_topology && self.signature.len() != m_real {
            same_topology = false;
        }
        if !same_topology {
            self.signature.clear();
            self.signature.extend(
                self.from
                    .iter()
                    .zip(&self.to)
                    .map(|(&u, &v)| ((u as u64) << 32) | v as u64),
            );
        }

        // `BIG` must dominate the cost of any simple path so that the return
        // arc (a) makes every augmenting s→t path a negative cycle and
        // (b) is never worth reducing once the flow is maximum.
        let max_cost = self.cost.iter().fold(0.0f64, |m, &c| m.max(c.abs()));
        let big = (max_cost + 1.0) * (n as f64 + 2.0);

        // Return arc sink → source.
        self.from.push(sink);
        self.to.push(source);
        self.cap.push(source_out);
        self.cost.push(-big);

        // Artificial root arcs `v → root`; with zero supplies they can never
        // carry flow (the root has no outgoing arc), so they stay at zero
        // and only serve as the crash basis.
        let root = n;
        for v in 0..n {
            self.from.push(v);
            self.to.push(root);
            self.cap.push(f64::INFINITY);
            self.cost.push(big);
        }

        debug_assert_eq!(self.from.len(), num_arcs);
        self.flow.resize(num_arcs, 0.0);
        self.num_nodes = n;
        same_topology && self.state.len() == num_arcs
    }

    /// Installs the crash basis: every real arc nonbasic at its lower bound,
    /// the artificial star as the tree.
    fn crash_basis(&mut self) {
        let n = self.num_nodes;
        let root = n;
        let num_arcs = self.from.len();
        let m_real = num_arcs - 1 - n;
        self.state.clear();
        self.state.resize(num_arcs, STATE_LOWER);
        self.flow.iter_mut().for_each(|f| *f = 0.0);
        self.parent.clear();
        self.parent.resize(n + 1, usize::MAX);
        self.pred.clear();
        self.pred.resize(n + 1, usize::MAX);
        self.depth.clear();
        self.depth.resize(n + 1, 0);
        self.pi.clear();
        self.pi.resize(n + 1, 0.0);
        self.children.resize_with(n + 1, Vec::new);
        for c in self.children.iter_mut() {
            c.clear();
        }
        for v in 0..n {
            let arc = m_real + 1 + v;
            self.state[arc] = STATE_TREE;
            self.parent[v] = root;
            self.pred[v] = arc;
            self.depth[v] = 1;
            // rc(v→root) = cost + pi[v] - pi[root] = 0.
            self.pi[v] = -self.cost[arc];
            self.children[root].push(v);
        }
    }

    /// Re-primes the stored basis for new capacities/costs: nonbasic flows
    /// snap to their bounds, tree flows are recomputed by conservation, and
    /// potentials are rebuilt from the tree.  Returns `false` when the old
    /// basis is infeasible under the new data (caller then crashes fresh).
    fn warm_basis(&mut self, eps_flow: f64) -> bool {
        let n = self.num_nodes;
        let root = n;
        // Bound-snapping pass; root arcs are tree arcs and handled below.
        self.excess.clear();
        self.excess.resize(n + 1, 0.0);
        for a in 0..self.from.len() {
            match self.state[a] {
                STATE_LOWER => self.flow[a] = 0.0,
                STATE_UPPER => {
                    if !self.cap[a].is_finite() {
                        return false;
                    }
                    self.flow[a] = self.cap[a];
                }
                _ => continue,
            }
            if self.flow[a] != 0.0 {
                self.excess[self.to[a]] += self.flow[a];
                self.excess[self.from[a]] -= self.flow[a];
            }
        }
        // Leaf elimination in decreasing depth order: the tree arc of each
        // node absorbs the node's residual imbalance.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_unstable_by_key(|&v| std::cmp::Reverse(self.depth[v]));
        for &v in &order {
            let arc = self.pred[v];
            if arc == usize::MAX {
                return false;
            }
            let up = self.parent[v];
            // `excess[v]` must be cancelled by the tree arc's flow.
            let f = if self.from[arc] == v {
                // v → parent: flow f contributes -f at v.
                self.excess[v]
            } else {
                // parent → v: flow f contributes +f at v.
                -self.excess[v]
            };
            if f < -eps_flow || f > self.cap[arc] + eps_flow {
                return false;
            }
            let f = f.clamp(0.0, self.cap[arc]);
            self.flow[arc] = f;
            if self.from[arc] == v {
                self.excess[up] += f;
            } else {
                self.excess[up] -= f;
            }
        }
        if self.excess[root].abs() > eps_flow.max(1e-6) {
            return false;
        }
        // Potentials from the tree (costs may have changed).
        self.pi[root] = 0.0;
        self.dfs_stack.clear();
        self.dfs_stack.push(root);
        while let Some(u) = self.dfs_stack.pop() {
            for i in 0..self.children[u].len() {
                let v = self.children[u][i];
                let arc = self.pred[v];
                self.pi[v] = if self.from[arc] == v {
                    // rc = cost + pi[v] - pi[u] = 0
                    self.pi[u] - self.cost[arc]
                } else {
                    self.pi[u] + self.cost[arc]
                };
                self.dfs_stack.push(v);
            }
        }
        true
    }

    /// Block pricing: the most negative reduced-cost violation in the first
    /// block containing any eligible arc.  Returns the entering arc and the
    /// push direction (+1: along the arc, -1: against it).
    fn find_entering(&mut self, eps_cost: f64) -> Option<(usize, i8)> {
        let m = self.from.len();
        if m == 0 {
            return None;
        }
        let block = ((m as f64).sqrt() as usize).max(16);
        let mut best: Option<usize> = None;
        let mut best_violation = eps_cost;
        let mut pos = self.block_pos % m;
        let mut scanned = 0;
        while scanned < m {
            let chunk = block.min(m - scanned);
            for _ in 0..chunk {
                let a = pos;
                pos = (pos + 1) % m;
                scanned += 1;
                let s = self.state[a];
                if s == STATE_TREE || self.cap[a] <= 0.0 {
                    continue;
                }
                let rc = self.cost[a] + self.pi[self.from[a]] - self.pi[self.to[a]];
                // An arc at lower bound is eligible when rc < -eps, one at
                // upper bound when rc > eps: uniformly, -state·rc > eps.
                let violation = -(s as f64) * rc;
                if violation > best_violation {
                    best_violation = violation;
                    best = Some(a);
                }
            }
            if best.is_some() {
                break;
            }
        }
        self.block_pos = pos;
        // The push direction equals the state sign: from the lower bound the
        // flow increases along the arc, from the upper bound it decreases.
        best.map(|a| (a, self.state[a]))
    }

    /// Lowest common ancestor of `a` and `b` under the current tree.
    fn join(&self, mut a: usize, mut b: usize) -> usize {
        while self.depth[a] > self.depth[b] {
            a = self.parent[a];
        }
        while self.depth[b] > self.depth[a] {
            b = self.parent[b];
        }
        while a != b {
            a = self.parent[a];
            b = self.parent[b];
        }
        a
    }

    /// Residual capacity of the tree arc above `x` when pushing *towards*
    /// the root (`up == true`) or away from it.
    fn tree_residual(&self, x: usize, up: bool) -> f64 {
        let arc = self.pred[x];
        let along = (self.from[arc] == x) == up;
        if along {
            self.cap[arc] - self.flow[arc]
        } else {
            self.flow[arc]
        }
    }

    /// One pivot on entering arc `e` pushed in direction `dir`.
    fn pivot(&mut self, e: usize, dir: i8) {
        // Push direction along the cycle: first --e--> second, then back
        // through the tree second → join → first.
        let (first, second) = if dir > 0 {
            (self.from[e], self.to[e])
        } else {
            (self.to[e], self.from[e])
        };
        let join = self.join(first, second);

        // Ratio test.  The entering arc's own residual:
        let mut delta = if dir > 0 {
            self.cap[e] - self.flow[e]
        } else {
            self.flow[e]
        };
        let mut leaving: Option<(usize, Side)> = None;
        // First-side path (join → … → first): augmentation runs *down*
        // (away from the root), i.e. against the upward walk.
        let mut x = first;
        while x != join {
            let r = self.tree_residual(x, false);
            if r < delta {
                delta = r;
                leaving = Some((x, Side::First));
            }
            x = self.parent[x];
        }
        // Second-side path (second → … → join): augmentation runs *up*.
        // `<=` (not `<`) implements the strongly-feasible tie-break.
        let mut x = second;
        while x != join {
            let r = self.tree_residual(x, true);
            if r <= delta {
                delta = r;
                leaving = Some((x, Side::Second));
            }
            x = self.parent[x];
        }

        // Augment.
        if delta > 0.0 {
            self.flow[e] += (dir as f64) * delta;
            let mut x = first;
            while x != join {
                let arc = self.pred[x];
                if self.from[arc] == x {
                    self.flow[arc] -= delta; // down-push against v→parent
                } else {
                    self.flow[arc] += delta;
                }
                x = self.parent[x];
            }
            let mut x = second;
            while x != join {
                let arc = self.pred[x];
                if self.from[arc] == x {
                    self.flow[arc] += delta; // up-push along v→parent
                } else {
                    self.flow[arc] -= delta;
                }
                x = self.parent[x];
            }
        }

        let Some((x_out, side)) = leaving else {
            // The entering arc itself hit its opposite bound: bound flip.
            self.state[e] = -dir;
            self.flow[e] = self.flow[e].clamp(0.0, self.cap[e]);
            return;
        };

        // Basis exchange: `pred[x_out]` leaves (at whichever bound it hit),
        // `e` enters.  The subtree detached at `x_out` contains `first` when
        // the blocking arc was on the first side, `second` otherwise; it is
        // re-hung from the entering arc.
        let out_arc = self.pred[x_out];
        let at_upper = (self.cap[out_arc] - self.flow[out_arc]).abs() <= self.flow[out_arc].abs();
        self.state[out_arc] = if at_upper { STATE_UPPER } else { STATE_LOWER };
        self.flow[out_arc] = if at_upper { self.cap[out_arc] } else { 0.0 };
        self.state[e] = STATE_TREE;

        let (z, w) = match side {
            Side::First => (first, second),
            Side::Second => (second, first),
        };

        // Reverse the parent pointers on the path z → x_out, attaching z
        // under w via the entering arc.
        self.path_nodes.clear();
        self.path_preds.clear();
        let mut x = z;
        loop {
            self.path_nodes.push(x);
            self.path_preds.push(self.pred[x]);
            if x == x_out {
                break;
            }
            x = self.parent[x];
        }
        let mut new_parent = w;
        let mut new_pred = e;
        for i in 0..self.path_nodes.len() {
            let node = self.path_nodes[i];
            let old_parent = self.parent[node];
            // Detach from the old parent's child list.
            if old_parent != usize::MAX {
                let list = &mut self.children[old_parent];
                if let Some(pos) = list.iter().position(|&c| c == node) {
                    list.swap_remove(pos);
                }
            }
            self.parent[node] = new_parent;
            self.pred[node] = new_pred;
            self.children[new_parent].push(node);
            new_parent = node;
            new_pred = self.path_preds[i];
        }

        // Depths and potentials of the re-hung subtree (and only it).
        self.dfs_stack.clear();
        self.dfs_stack.push(z);
        while let Some(u) = self.dfs_stack.pop() {
            let p = self.parent[u];
            let arc = self.pred[u];
            self.depth[u] = self.depth[p] + 1;
            self.pi[u] = if self.from[arc] == u {
                self.pi[p] - self.cost[arc]
            } else {
                self.pi[p] + self.cost[arc]
            };
            for i in 0..self.children[u].len() {
                let c = self.children[u][i];
                self.dfs_stack.push(c);
            }
        }
    }

    /// Runs the pivot loop to optimality.  Returns `false` when the pivot
    /// budget blows up (caller falls back to the reference kernel).
    fn optimize(&mut self, eps_cost: f64) -> bool {
        let m = self.from.len();
        let budget = 200 * m + 2_000;
        for _ in 0..budget {
            match self.find_entering(eps_cost) {
                Some((e, dir)) => self.pivot(e, dir),
                None => return true,
            }
        }
        false
    }

    /// Writes the computed flow back into the residual network and sums the
    /// objective over the real arcs.
    fn extract(&self, network: &mut FlowNetwork) -> (f64, f64) {
        let m_real = network.num_edges();
        let mut cost = 0.0;
        for a in 0..m_real {
            let f = self.flow[a].clamp(0.0, self.cap[a]);
            if f > FLOW_EPS {
                network.push(2 * a, f);
                cost += f * self.cost[a];
            }
        }
        (self.flow[m_real], cost) // return arc carries the s→t value
    }
}

impl MinCostBackend for NetworkSimplexBackend {
    fn name(&self) -> &'static str {
        "simplex"
    }

    fn solve_up_to(
        &mut self,
        network: &mut FlowNetwork,
        source: usize,
        sink: usize,
        target: f64,
        workspace: &mut FlowWorkspace,
    ) -> MinCostResult {
        assert!(source < network.num_nodes() && sink < network.num_nodes());
        assert_ne!(source, sink);
        if target <= 0.0 {
            return MinCostResult {
                flow: 0.0,
                cost: 0.0,
                augmentations: 0,
                phases: 0,
            };
        }
        let warm_candidate = self.load(network, source, sink);
        let max_cap = self
            .cap
            .iter()
            .filter(|c| c.is_finite())
            .fold(0.0f64, |m, &c| m.max(c));
        let eps_flow = 1e-9 * (1.0 + max_cap);
        let max_cost = self.cost.iter().fold(0.0f64, |m, &c| m.max(c.abs()));
        let eps_cost = 1e-11 * (1.0 + max_cost);

        let warmed = warm_candidate && self.warm_basis(eps_flow);
        if !warmed {
            self.crash_basis();
        }
        self.basis_valid = false; // invalidated until this solve completes
        if !self.optimize(eps_cost) {
            // Pathological numerics: certified fallback to the reference
            // kernel on a clean network.
            self.fallbacks += 1;
            network.reset();
            return min_cost_flow_up_to(network, source, sink, target, workspace);
        }
        self.basis_valid = true;
        let (flow, cost) = self.extract(network);
        MinCostResult {
            flow,
            cost,
            augmentations: 0,
            phases: if warmed { 0 } else { 1 },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mincost::min_cost_max_flow;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6 * (1.0 + a.abs().max(b.abs()))
    }

    /// Runs both backends on identically-built networks and checks they
    /// agree on flow value and cost.
    fn assert_backends_agree(build: impl Fn() -> FlowNetwork, s: usize, t: usize) {
        let mut g_ref = build();
        let reference = min_cost_max_flow(&mut g_ref, s, t);
        let mut g_ns = build();
        let mut ns = NetworkSimplexBackend::new();
        let r = ns.solve_up_to(&mut g_ns, s, t, f64::INFINITY, &mut FlowWorkspace::new());
        assert_eq!(ns.fallback_count(), 0, "simplex fell back");
        assert!(
            close(r.flow, reference.flow),
            "flow {} vs reference {}",
            r.flow,
            reference.flow
        );
        assert!(
            close(r.cost, reference.cost),
            "cost {} vs reference {}",
            r.cost,
            reference.cost
        );
        // The flow left in the network is conserved and within capacity.
        for a in 0..g_ns.num_edges() {
            let f = g_ns.flow_on(2 * a);
            assert!(f >= -1e-9 && f <= g_ref.edge(2 * a).original_cap + 1e-9);
        }
    }

    #[test]
    fn agrees_on_two_parallel_routes() {
        assert_backends_agree(
            || {
                let mut g = FlowNetwork::new(4);
                g.add_edge(0, 1, 1.0, 0.0);
                g.add_edge(1, 3, 1.0, 1.0);
                g.add_edge(0, 2, 1.0, 0.0);
                g.add_edge(2, 3, 1.0, 5.0);
                g
            },
            0,
            3,
        );
    }

    #[test]
    fn agrees_on_fractional_split() {
        assert_backends_agree(
            || {
                let mut g = FlowNetwork::new(3);
                g.add_edge(0, 1, 1.0, 0.0);
                g.add_edge(1, 2, 0.4, 1.0);
                g.add_edge(1, 2, 10.0, 2.0);
                g
            },
            0,
            2,
        );
    }

    #[test]
    fn agrees_when_negative_costs_are_present() {
        assert_backends_agree(
            || {
                let mut g = FlowNetwork::new(4);
                g.add_edge(0, 1, 1.0, 0.0);
                g.add_edge(1, 3, 1.0, -2.0);
                g.add_edge(0, 2, 1.0, 0.0);
                g.add_edge(2, 3, 1.0, 4.0);
                g
            },
            0,
            3,
        );
    }

    #[test]
    fn empty_network_ships_nothing() {
        let mut g = FlowNetwork::new(2);
        let mut ns = NetworkSimplexBackend::new();
        let r = ns.solve_up_to(&mut g, 0, 1, f64::INFINITY, &mut FlowWorkspace::new());
        assert!(close(r.flow, 0.0) && close(r.cost, 0.0));
    }

    #[test]
    fn agrees_on_random_transportation_networks() {
        // Deterministic pseudo-random bipartite instances (mixed congruential
        // stream), shaped like the scheduler's: source → jobs → bins → sink.
        let mut seed = 0x9E37_79B9u64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64) / (1u64 << 31) as f64
        };
        for case in 0..40 {
            let jobs = 1 + case % 5;
            let bins = 1 + (case / 2) % 6;
            let mut demands = Vec::new();
            let mut caps = Vec::new();
            let mut routes = Vec::new();
            for _ in 0..jobs {
                demands.push(0.25 + 4.0 * next());
            }
            for _ in 0..bins {
                caps.push(0.25 + 5.0 * next());
            }
            for j in 0..jobs {
                for b in 0..bins {
                    if next() < 0.7 {
                        routes.push((j, b, 5.0 * next()));
                    }
                }
            }
            let build = || {
                let s = jobs + bins;
                let t = s + 1;
                let mut g = FlowNetwork::new(jobs + bins + 2);
                for (j, &d) in demands.iter().enumerate() {
                    g.add_edge(s, j, d, 0.0);
                }
                for (b, &c) in caps.iter().enumerate() {
                    g.add_edge(jobs + b, t, c, 0.0);
                }
                for &(j, b, cost) in &routes {
                    g.add_edge(j, jobs + b, demands[j], cost);
                }
                g
            };
            assert_backends_agree(build, jobs + bins, jobs + bins + 1);
        }
    }

    #[test]
    fn warm_start_matches_cold_solves_across_capacity_and_cost_moves() {
        // Same topology, shifting capacities/costs: the second and third
        // solves take the warm path and must match fresh-backend solves.
        let build = |scale: f64, cost: f64| {
            let mut g = FlowNetwork::new(5);
            g.add_edge(0, 1, 2.0 * scale, 0.0);
            g.add_edge(0, 2, 3.0 * scale, 0.0);
            g.add_edge(1, 3, 2.0 * scale, cost);
            g.add_edge(2, 3, 3.0 * scale, 2.0 * cost);
            g.add_edge(3, 4, 4.0 * scale, 0.0);
            g
        };
        let mut shared = NetworkSimplexBackend::new();
        let mut ws = FlowWorkspace::new();
        for (scale, cost) in [(1.0, 1.0), (0.5, 3.0), (2.0, 0.25), (2.0, 0.25)] {
            let mut g_warm = build(scale, cost);
            let warm = shared.solve_up_to(&mut g_warm, 0, 4, f64::INFINITY, &mut ws);
            let mut g_cold = build(scale, cost);
            let cold = NetworkSimplexBackend::new().solve_up_to(
                &mut g_cold,
                0,
                4,
                f64::INFINITY,
                &mut FlowWorkspace::new(),
            );
            assert!(
                close(warm.flow, cold.flow),
                "{} vs {}",
                warm.flow,
                cold.flow
            );
            assert!(
                close(warm.cost, cold.cost),
                "{} vs {}",
                warm.cost,
                cold.cost
            );
        }
        assert_eq!(shared.fallback_count(), 0);
    }

    #[test]
    fn topology_change_invalidates_the_warm_basis() {
        let mut ns = NetworkSimplexBackend::new();
        let mut ws = FlowWorkspace::new();
        let mut g1 = FlowNetwork::new(3);
        g1.add_edge(0, 1, 1.0, 1.0);
        g1.add_edge(1, 2, 1.0, 1.0);
        let r1 = ns.solve_up_to(&mut g1, 0, 2, f64::INFINITY, &mut ws);
        assert!(close(r1.flow, 1.0));
        // Different arc set: must not reuse the basis (and must stay right).
        let mut g2 = FlowNetwork::new(4);
        g2.add_edge(0, 1, 2.0, 1.0);
        g2.add_edge(0, 2, 2.0, 3.0);
        g2.add_edge(1, 3, 1.0, 0.0);
        g2.add_edge(2, 3, 2.0, 0.0);
        let r2 = ns.solve_up_to(&mut g2, 0, 3, f64::INFINITY, &mut ws);
        let mut g2b = FlowNetwork::new(4);
        g2b.add_edge(0, 1, 2.0, 1.0);
        g2b.add_edge(0, 2, 2.0, 3.0);
        g2b.add_edge(1, 3, 1.0, 0.0);
        g2b.add_edge(2, 3, 2.0, 0.0);
        let reference = min_cost_max_flow(&mut g2b, 0, 3);
        assert!(close(r2.flow, reference.flow));
        assert!(close(r2.cost, reference.cost));
    }
}
