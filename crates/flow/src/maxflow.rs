//! Dinic's maximum-flow algorithm on floating-point capacities.

use crate::graph::FlowNetwork;
use crate::workspace::FlowWorkspace;
use crate::FLOW_EPS;

/// Result of a max-flow computation.
#[derive(Clone, Debug)]
pub struct MaxFlowResult {
    /// Total flow value pushed from source to sink *by this call* (when the
    /// network already carried flow — e.g. a warm-started probe — the
    /// pre-existing flow is not included).
    pub value: f64,
}

/// Computes the maximum `source -> sink` flow in `network` using Dinic's
/// algorithm (BFS level graph + blocking-flow DFS).
///
/// Capacities are real numbers; augmenting paths smaller than [`FLOW_EPS`]
/// are ignored, which bounds the number of phases in practice (the
/// transportation networks built by the scheduler have integral structure up
/// to job sizes, so Dinic's `O(V²E)` phase bound applies as usual).
///
/// This convenience wrapper allocates fresh scratch; hot paths should hold a
/// [`FlowWorkspace`] and call [`max_flow_with`] instead.
pub fn max_flow(network: &mut FlowNetwork, source: usize, sink: usize) -> MaxFlowResult {
    max_flow_with(
        network,
        source,
        sink,
        f64::INFINITY,
        &mut FlowWorkspace::new(),
    )
}

/// [`max_flow`] with caller-provided scratch buffers and an early-exit
/// target.
///
/// The search stops as soon as the flow pushed by this call reaches
/// `target` — feasibility probes only need to know whether the demand can be
/// shipped, not the true maximum, so passing `total_demand - tolerance`
/// skips the final (often most expensive) phases.  Pass `f64::INFINITY` for
/// a true maximum flow.
pub fn max_flow_with(
    network: &mut FlowNetwork,
    source: usize,
    sink: usize,
    target: f64,
    workspace: &mut FlowWorkspace,
) -> MaxFlowResult {
    assert!(source < network.num_nodes() && sink < network.num_nodes());
    assert_ne!(source, sink, "source and sink must differ");
    let n = network.num_nodes();
    workspace.ensure_nodes(n);
    let mut total = 0.0;

    while total < target {
        // BFS: build level graph on residual edges.
        let level = &mut workspace.level[..n];
        for l in level.iter_mut() {
            *l = -1;
        }
        level[source] = 0;
        workspace.queue.clear();
        workspace.queue.push_back(source);
        while let Some(u) = workspace.queue.pop_front() {
            for &eid in network.edges_from(u) {
                let e = network.edge(eid);
                if e.cap > FLOW_EPS && workspace.level[e.to] < 0 {
                    workspace.level[e.to] = workspace.level[u] + 1;
                    workspace.queue.push_back(e.to);
                }
            }
        }
        if workspace.level[sink] < 0 {
            break;
        }
        for it in workspace.iter_idx[..n].iter_mut() {
            *it = 0;
        }
        // Blocking flow via DFS, stopping early once the target is reached.
        while total < target {
            let pushed = dfs_push(
                network,
                source,
                sink,
                f64::INFINITY,
                &workspace.level,
                &mut workspace.iter_idx,
            );
            if pushed <= FLOW_EPS {
                break;
            }
            total += pushed;
            // Each DFS pushes one complete source→sink path, so per-node
            // conservation must hold at every intermediate state.
            #[cfg(feature = "invariant-audit")]
            crate::audit::check_flow_conservation(network, source, sink);
        }
    }
    MaxFlowResult { value: total }
}

/// Recursive DFS used by Dinic's blocking-flow step.
fn dfs_push(
    network: &mut FlowNetwork,
    u: usize,
    sink: usize,
    limit: f64,
    level: &[i32],
    iter_idx: &mut [usize],
) -> f64 {
    if u == sink {
        return limit;
    }
    while iter_idx[u] < network.edges_from(u).len() {
        let eid = network.edges_from(u)[iter_idx[u]];
        let (to, cap) = {
            let e = network.edge(eid);
            (e.to, e.cap)
        };
        if cap > FLOW_EPS && level[to] == level[u] + 1 {
            let pushed = dfs_push(network, to, sink, limit.min(cap), level, iter_idx);
            if pushed > FLOW_EPS {
                network.push(eid, pushed);
                return pushed;
            }
        }
        iter_idx[u] += 1;
    }
    0.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-7
    }

    #[test]
    fn single_edge() {
        let mut g = FlowNetwork::new(2);
        g.add_edge(0, 1, 3.5, 0.0);
        let r = max_flow(&mut g, 0, 1);
        assert!(close(r.value, 3.5));
    }

    #[test]
    fn classic_diamond() {
        // s -> a (3), s -> b (2), a -> t (2), b -> t (3), a -> b (1)
        let mut g = FlowNetwork::new(4);
        let (s, a, b, t) = (0, 1, 2, 3);
        g.add_edge(s, a, 3.0, 0.0);
        g.add_edge(s, b, 2.0, 0.0);
        g.add_edge(a, t, 2.0, 0.0);
        g.add_edge(b, t, 3.0, 0.0);
        g.add_edge(a, b, 1.0, 0.0);
        let r = max_flow(&mut g, s, t);
        assert!(close(r.value, 5.0));
    }

    #[test]
    fn disconnected_sink_gives_zero() {
        let mut g = FlowNetwork::new(3);
        g.add_edge(0, 1, 10.0, 0.0);
        let r = max_flow(&mut g, 0, 2);
        assert!(close(r.value, 0.0));
    }

    #[test]
    fn fractional_capacities() {
        let mut g = FlowNetwork::new(4);
        g.add_edge(0, 1, 0.3, 0.0);
        g.add_edge(0, 2, 0.7, 0.0);
        g.add_edge(1, 3, 1.0, 0.0);
        g.add_edge(2, 3, 0.25, 0.0);
        let r = max_flow(&mut g, 0, 3);
        assert!(close(r.value, 0.3 + 0.25));
    }

    #[test]
    fn respects_bottleneck() {
        // A long chain with a tiny middle edge.
        let mut g = FlowNetwork::new(5);
        g.add_edge(0, 1, 100.0, 0.0);
        g.add_edge(1, 2, 0.001, 0.0);
        g.add_edge(2, 3, 100.0, 0.0);
        g.add_edge(3, 4, 100.0, 0.0);
        let r = max_flow(&mut g, 0, 4);
        assert!(close(r.value, 0.001));
    }

    #[test]
    fn early_exit_stops_at_the_target() {
        // Max flow is 5, but a feasibility probe for 2 units stops early
        // (possibly slightly overshooting by one augmenting path).
        let mut g = FlowNetwork::new(4);
        let (s, a, b, t) = (0, 1, 2, 3);
        g.add_edge(s, a, 3.0, 0.0);
        g.add_edge(s, b, 2.0, 0.0);
        g.add_edge(a, t, 2.0, 0.0);
        g.add_edge(b, t, 3.0, 0.0);
        let mut ws = FlowWorkspace::new();
        let r = max_flow_with(&mut g, s, t, 2.0, &mut ws);
        assert!(r.value >= 2.0 - 1e-9);
        assert!(r.value <= 5.0);
    }

    #[test]
    fn workspace_is_reusable_across_networks_of_different_sizes() {
        let mut ws = FlowWorkspace::new();
        let mut big = FlowNetwork::new(6);
        big.add_edge(0, 4, 1.0, 0.0);
        big.add_edge(4, 5, 1.0, 0.0);
        let r = max_flow_with(&mut big, 0, 5, f64::INFINITY, &mut ws);
        assert!(close(r.value, 1.0));
        let mut small = FlowNetwork::new(2);
        small.add_edge(0, 1, 2.5, 0.0);
        let r = max_flow_with(&mut small, 0, 1, f64::INFINITY, &mut ws);
        assert!(close(r.value, 2.5));
    }

    #[test]
    fn warm_start_resumes_from_existing_flow() {
        // Push 1 unit, then resume: the second call only reports the delta.
        let mut g = FlowNetwork::new(2);
        let e = g.add_edge(0, 1, 3.0, 0.0);
        g.push(e, 1.0);
        let r = max_flow(&mut g, 0, 1);
        assert!(close(r.value, 2.0));
        assert!(close(g.flow_on(e), 3.0));
    }

    #[test]
    fn flow_conservation_holds() {
        let mut g = FlowNetwork::new(6);
        let s = 0;
        let t = 5;
        let mut handles = Vec::new();
        for (u, v, c) in [
            (0, 1, 4.0),
            (0, 2, 3.0),
            (1, 3, 2.5),
            (1, 4, 2.0),
            (2, 3, 2.0),
            (2, 4, 1.5),
            (3, 5, 4.0),
            (4, 5, 4.0),
        ] {
            handles.push((u, v, g.add_edge(u, v, c, 0.0)));
        }
        let r = max_flow(&mut g, s, t);
        // For every internal node, inflow == outflow.
        for node in 1..5 {
            let inflow: f64 = handles
                .iter()
                .filter(|(_, v, _)| *v == node)
                .map(|(_, _, e)| g.flow_on(*e))
                .sum();
            let outflow: f64 = handles
                .iter()
                .filter(|(u, _, _)| *u == node)
                .map(|(_, _, e)| g.flow_on(*e))
                .sum();
            assert!(close(inflow, outflow), "conservation at {node}");
        }
        assert!(r.value > 0.0);
    }
}
