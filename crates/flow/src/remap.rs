//! Cross-event basis memory for the network simplex.
//!
//! The exact-topology warm start of [`crate::simplex::NetworkSimplexBackend`]
//! (PR 2) only fires when two consecutive instances have *identical* arc
//! lists — the repeated-solve case, not the scheduler's.  Across arrival and
//! completion events the System-(2) network changes shape: completed jobs
//! drop their arcs, new jobs add theirs, and the `(site, interval)` bin set
//! stretches or shrinks with the epochal structure.  Yet most of the network
//! *persists*: Srivastav–Trystram-style online re-optimisation exploits
//! exactly this — consecutive instances differ by a handful of jobs.
//!
//! A [`BasisRemap`] carries the previous solve's basis across such a shape
//! change.  Identity is established by **stable node keys** supplied by the
//! caller through [`crate::MinCostBackend::warm_hint`] (the scheduling layer
//! keys jobs by their instance-wide job id and bins by `(site, interval
//! position)`, both stable across events).  Each basic/nonbasic arc state is
//! remembered under the key pair of its endpoints, and remapping onto the
//! next network is pure bookkeeping:
//!
//! 1. arcs whose endpoint keys **persist** keep their basis state;
//! 2. **departed** arcs vanish with their nodes — nothing to do;
//! 3. **new** arcs enter nonbasic at their lower bound;
//! 4. the surviving tree arcs are *repaired* into a spanning tree: a
//!    union–find pass keeps every surviving tree arc that connects two
//!    components (demoting the rest to their lower bound), then hangs every
//!    still-disconnected node off the artificial root — a bounded
//!    `O(m α(n))` repair instead of a cold crash-basis Phase 1.
//!
//! The remapped basis is then re-primed exactly like an exact-topology warm
//! start (bound snap, conservation re-solve, fresh potentials); if the old
//! basis is infeasible under the new capacities the solver falls back to a
//! crash basis, so **correctness never depends on the remap** — it only
//! decides how many pivots the solve needs.

use crate::fasthash::FastMap;

/// Reserved stable key of the artificial root node (never supplied by
/// callers; see [`crate::backend::KEY_SUPER_SOURCE`] for the caller-facing
/// reserved keys).
const KEY_ROOT: u64 = u64::MAX;

/// Remembered spanning-tree basis of a previous solve, keyed by stable node
/// identities, plus the machinery to map it onto a structurally different
/// network.
///
/// Owned by a [`crate::simplex::NetworkSimplexBackend`]; one remap per
/// backend, refreshed after every solve that was given a
/// [`crate::MinCostBackend::warm_hint`].  The struct itself is
/// allocation-reusing: the key map is cleared and refilled, never rebuilt.
///
/// ```
/// use stretch_flow::{BasisRemap, STATE_LOWER, STATE_TREE};
///
/// let mut remap = BasisRemap::default();
/// // Event 1: two nodes (keys 10, 20), the real arc 0→1 basic, plus the
/// // two artificial arcs towards the root (node 2).
/// remap.remember(
///     &[10, 20],
///     &[0, 0, 1],
///     &[1, 2, 2],
///     &[STATE_TREE, STATE_TREE, STATE_LOWER],
/// );
/// // Event 2: node 20 departed, node 30 arrived.  The arc 10→30 is new, so
/// // it enters at its lower bound; the repair pass re-hangs node 1 (key 30)
/// // off the artificial root to restore a spanning tree.
/// let mut states = Vec::new();
/// remap.plan(&[10, 30], &[0, 0, 1], &[1, 2, 2], 2, 1, &mut states);
/// assert_eq!(states[0], STATE_LOWER); // 10→30 is a new arc
/// assert_eq!(states[2], STATE_TREE); // node 30 hung off the root
/// ```
#[derive(Debug, Default)]
pub struct BasisRemap {
    /// Arc state of the remembered basis under the endpoint key pair.
    ///
    /// Only **non-default** states are stored: an arc missing from the map
    /// is at its lower bound (the overwhelming majority on transportation
    /// optima), and artificial root arcs are omitted entirely — the repair
    /// pass re-hangs disconnected nodes off the root regardless, so
    /// remembering root arcs buys nothing.  This keeps the map at O(tree +
    /// saturated arcs) instead of O(arcs), which matters: the remap runs
    /// once per scheduling event.
    states: FastMap<(u64, u64), i8>,
    /// `true` when a basis has been remembered and not invalidated.
    valid: bool,
    /// Union–find scratch of the tree-repair pass.
    uf: Vec<usize>,
}

impl BasisRemap {
    /// `true` when a previous basis is available for remapping.
    pub fn is_valid(&self) -> bool {
        self.valid
    }

    /// Drops the remembered basis (e.g. after a solve that carried no stable
    /// keys, whose basis therefore cannot be keyed).
    pub fn invalidate(&mut self) {
        self.valid = false;
        self.states.clear();
    }

    /// Remembers the basis of a completed solve: `keys[v]` is the stable key
    /// of node `v`, and `states[a]` the basis state of the arc
    /// `from[a] → to[a]`.  Arc endpoints equal to `keys.len()` denote the
    /// artificial root (which has no caller-supplied key).
    ///
    /// Lower-bound arcs and artificial root arcs are not stored (see the
    /// `states` field docs); a root arc that was basic simply leaves its
    /// node to be re-hung by the repair pass of [`Self::plan`].
    pub fn remember(&mut self, keys: &[u64], from: &[usize], to: &[usize], states: &[i8]) {
        self.states.clear();
        let n = keys.len();
        let key_of = |v: usize| if v < n { keys[v] } else { KEY_ROOT };
        for a in 0..from.len() {
            if states[a] == crate::simplex::STATE_LOWER || to[a] == n || from[a] == n {
                continue;
            }
            self.states
                .insert((key_of(from[a]), key_of(to[a])), states[a]);
        }
        self.valid = true;
    }

    /// Maps the remembered basis onto a new network, writing one state per
    /// arc into `states`: persisting arcs keep their remembered state, new
    /// arcs enter at their lower bound, and the surviving tree arcs are
    /// repaired into a spanning tree over the `n + 1` nodes (artificial root
    /// included) — see the module docs for the exact rules.
    ///
    /// `states` is cleared and refilled; the caller still has to rebuild the
    /// tree arrays and re-prime flows/potentials (and fall back to a crash
    /// basis if the re-priming finds the remapped basis infeasible).
    pub fn plan(
        &mut self,
        keys: &[u64],
        from: &[usize],
        to: &[usize],
        n: usize,
        up_base: usize,
        states: &mut Vec<i8>,
    ) {
        debug_assert!(self.valid, "plan() without a remembered basis");
        debug_assert_eq!(keys.len(), n);
        let key_of = |v: usize| if v < n { keys[v] } else { KEY_ROOT };
        states.clear();
        states.extend((0..from.len()).map(|a| {
            if from[a] == n || to[a] == n {
                // Artificial arcs are never remembered; the repair pass
                // promotes them as needed.
                return crate::simplex::STATE_LOWER;
            }
            *self
                .states
                .get(&(key_of(from[a]), key_of(to[a])))
                .unwrap_or(&crate::simplex::STATE_LOWER)
        }));
        repair_spanning_tree(&mut self.uf, from, to, n, up_base, states);
    }
}

/// Repairs a candidate tree-arc set into a spanning tree over nodes
/// `0..=n` (node `n` is the artificial root): surviving tree arcs are kept
/// in arc order whenever they connect two components and demoted to their
/// lower bound otherwise, then every node still disconnected from the root
/// is hung off its artificial up arc.
///
/// `up_base` is the index of the first artificial `v → root` arc (node
/// order), following the simplex backend's arc layout.
pub(crate) fn repair_spanning_tree(
    uf: &mut Vec<usize>,
    from: &[usize],
    to: &[usize],
    n: usize,
    up_base: usize,
    states: &mut [i8],
) {
    uf.clear();
    uf.extend(0..=n);
    fn find(uf: &mut [usize], mut x: usize) -> usize {
        while uf[x] != x {
            uf[x] = uf[uf[x]]; // path halving
            x = uf[x];
        }
        x
    }
    let num_arcs = from.len();
    for a in 0..num_arcs {
        if states[a] != crate::simplex::STATE_TREE {
            continue;
        }
        let (ra, rb) = (find(uf, from[a]), find(uf, to[a]));
        if ra == rb {
            states[a] = crate::simplex::STATE_LOWER;
        } else {
            uf[ra] = rb;
        }
    }
    for v in 0..n {
        let (rv, rr) = (find(uf, v), find(uf, n));
        if rv != rr {
            let arc = up_base + v;
            debug_assert_eq!((from[arc], to[arc]), (v, n), "root-arc layout");
            states[arc] = crate::simplex::STATE_TREE;
            uf[rv] = rr;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplex::{STATE_LOWER, STATE_TREE, STATE_UPPER};

    #[test]
    fn persisting_arcs_keep_their_state_and_new_arcs_enter_nonbasic() {
        let mut remap = BasisRemap::default();
        // Previous solve: nodes keyed 100, 200, root arcs at the tail.
        // Arcs: 0→1 (tree), 0→root, 1→root (tree).
        remap.remember(
            &[100, 200],
            &[0, 0, 1],
            &[1, 2, 2],
            &[STATE_TREE, STATE_LOWER, STATE_TREE],
        );
        // New solve: node 200 survives as index 0, new node 300 at index 1.
        // Arcs: 0→1 (new), 0→root, 1→root (the root is node 2).
        let mut states = Vec::new();
        remap.plan(&[200, 300], &[0, 0, 1], &[1, 2, 2], 2, 1, &mut states);
        assert_eq!(states[0], STATE_LOWER, "new arc enters at lower bound");
        assert_eq!(states[1], STATE_TREE, "200→root survived as a tree arc");
        assert_eq!(states[2], STATE_TREE, "disconnected node hung off root");
    }

    #[test]
    fn cycle_forming_survivors_are_demoted() {
        let mut uf = Vec::new();
        // Triangle 0-1-2 all marked tree + root arcs: the third triangle arc
        // closes a cycle and must be demoted; the component then connects to
        // the root through one artificial arc.
        let from = [0, 1, 2, 0, 1, 2];
        let to = [1, 2, 0, 3, 3, 3];
        let mut states = [
            STATE_TREE,
            STATE_TREE,
            STATE_TREE,
            STATE_LOWER,
            STATE_LOWER,
            STATE_LOWER,
        ];
        repair_spanning_tree(&mut uf, &from, &to, 3, 3, &mut states);
        assert_eq!(states[2], STATE_LOWER, "cycle-closing arc demoted");
        let tree_count = states.iter().filter(|&&s| s == STATE_TREE).count();
        assert_eq!(tree_count, 3, "spanning tree over 4 nodes has 3 arcs");
    }

    #[test]
    fn upper_bound_states_survive_the_remap() {
        // Nodes keyed 7 and 8; arcs: 0→1 at its upper bound, then the two
        // artificial arcs (root is node 2), both basic.
        let mut remap = BasisRemap::default();
        remap.remember(
            &[7, 8],
            &[0, 0, 1],
            &[1, 2, 2],
            &[STATE_UPPER, STATE_TREE, STATE_TREE],
        );
        let mut states = Vec::new();
        remap.plan(&[7, 8], &[0, 0, 1], &[1, 2, 2], 2, 1, &mut states);
        assert_eq!(states[0], STATE_UPPER);
        assert_eq!(states[1], STATE_TREE);
        assert_eq!(states[2], STATE_TREE);
    }

    #[test]
    fn invalidation_forgets_the_basis() {
        let mut remap = BasisRemap::default();
        remap.remember(&[1], &[0], &[1], &[STATE_TREE]);
        assert!(remap.is_valid());
        remap.invalidate();
        assert!(!remap.is_valid());
    }
}
