//! Pluggable back-ends for the minimum-cost solve.
//!
//! The System-(2) re-allocation — the dominant per-event cost of the on-line
//! schedulers — bottoms out in one operation: *ship every demand at minimum
//! cost on a bipartite transportation network*.  Two algorithm families solve
//! it with very different constant factors, and which one wins depends on the
//! instance shape, so the operation is abstracted behind [`MinCostBackend`]:
//!
//! * [`PrimalDualBackend`] — the Hungarian-style primal-dual kernel of
//!   [`crate::mincost`], the **reference implementation**.  Every other
//!   backend is cross-checked against it by the differential-oracle test
//!   harness (`crates/core/tests/backend_diff.rs`).
//! * [`crate::simplex::NetworkSimplexBackend`] — a network simplex on a
//!   spanning-tree basis with strongly-feasible pivots, warm-startable from
//!   the previous solve's basis: in place when the arc topology repeats, or
//!   through a [`crate::remap::BasisRemap`] when the shape changed but the
//!   caller supplied stable node keys via [`MinCostBackend::warm_hint`].
//! * [`crate::monge::MongeBackend`] — a structural detector plus greedy
//!   north-west-corner kernel for product-form (Monge) transportation
//!   costs, the exact shape of the System-(2) instances: certified
//!   instances are solved with zero pivoting and verified through the
//!   simplex's canonicalising tail (bit-identical to a `simplex` solve by
//!   construction); uncertified ones fall through to the simplex.
//!
//! # Contract
//!
//! [`MinCostBackend::solve_up_to`] receives a residual network **carrying no
//! flow** (freshly built, or [`crate::FlowNetwork::reset`]); it must leave the
//! computed flow *in* the network (so callers read per-edge amounts with
//! [`crate::FlowNetwork::flow_on`]) and return the shipped value and its
//! cost.  The returned flow must be
//!
//! 1. of value at least `min(target, max-flow value)` — a backend may stop
//!    early once `target` is covered, or solve to the exact maximum;
//! 2. of minimum cost **among flows of its value** (the invariant feasibility
//!    checks and cost comparisons downstream rely on).
//!
//! Backend selection is threaded through the scheduling layer by
//! `stretch_core::SolverConfig`; [`BackendKind`] is the serialisable tag the
//! configuration, the CI test matrix (`STRETCH_MINCOST_BACKEND`) and the
//! bench rows use to name a backend.

use crate::graph::FlowNetwork;
use crate::mincost::{min_cost_flow_up_to, MinCostResult};
use crate::workspace::FlowWorkspace;

/// Reserved stable key of the super-source node in a
/// [`MinCostBackend::warm_hint`] key vector.
///
/// Callers key *their* nodes (jobs, bins) however they like, but the two
/// artificial endpoints of a transportation network should use these
/// reserved values so they match across events whatever the network shape.
pub const KEY_SUPER_SOURCE: u64 = u64::MAX - 1;

/// Reserved stable key of the super-sink node in a
/// [`MinCostBackend::warm_hint`] key vector; see [`KEY_SUPER_SOURCE`].
pub const KEY_SUPER_SINK: u64 = u64::MAX - 2;

/// A minimum-cost flow solver usable by the scheduling layer.
///
/// Implementations are stateful (`&mut self`) so they can keep scratch
/// memory — and, for the network simplex, the previous spanning-tree basis —
/// alive across solves; see the module docs for the exact contract.
///
/// ```
/// use stretch_flow::{FlowNetwork, FlowWorkspace, MinCostBackend, PrimalDualBackend};
///
/// let mut g = FlowNetwork::new(3);
/// g.add_edge(0, 1, 2.0, 0.0);
/// g.add_edge(1, 2, 2.0, 3.0);
/// let mut backend = PrimalDualBackend;
/// let r = backend.solve_up_to(&mut g, 0, 2, f64::INFINITY, &mut FlowWorkspace::new());
/// assert!((r.flow - 2.0).abs() < 1e-9);
/// assert!((r.cost - 6.0).abs() < 1e-9);
/// // The flow is left in the network for the caller to read back.
/// assert!((g.flow_on(2) - 2.0).abs() < 1e-9);
/// ```
pub trait MinCostBackend {
    /// Stable display name (used by benches and diagnostics).
    fn name(&self) -> &'static str;

    /// Supplies stable node identities for the **next** [`Self::solve_up_to`]
    /// call: `node_keys[v]` is a caller-chosen key for node `v` of the next
    /// network, equal across solves exactly when the node denotes the same
    /// logical entity (the scheduling layer keys jobs by instance-wide job
    /// id and bins by `(site, interval position)`; the artificial endpoints
    /// use [`KEY_SUPER_SOURCE`] / [`KEY_SUPER_SINK`]).
    ///
    /// Purely a performance hint: backends with cross-solve state (the
    /// network simplex) use it to remap the previous basis onto the next
    /// network even when the topology changed; stateless backends ignore it,
    /// and results must be identical either way (the warm/cold bit-identity
    /// contract, pinned by the differential-oracle suite).
    fn warm_hint(&mut self, _node_keys: &[u64]) {}

    /// Ships flow from `source` to `sink` at minimum cost, stopping once
    /// `target` units are shipped (or at the maximum flow if it is smaller).
    ///
    /// The network must carry no flow on entry; the computed flow is left in
    /// the network's residual state.
    fn solve_up_to(
        &mut self,
        network: &mut FlowNetwork,
        source: usize,
        sink: usize,
        target: f64,
        workspace: &mut FlowWorkspace,
    ) -> MinCostResult;
}

/// The reference backend: successive shortest paths in Hungarian primal-dual
/// form ([`crate::mincost::min_cost_flow_up_to`]).
///
/// Stateless — all scratch lives in the caller's [`FlowWorkspace`].
#[derive(Clone, Copy, Debug, Default)]
pub struct PrimalDualBackend;

impl MinCostBackend for PrimalDualBackend {
    fn name(&self) -> &'static str {
        "primal-dual"
    }

    fn solve_up_to(
        &mut self,
        network: &mut FlowNetwork,
        source: usize,
        sink: usize,
        target: f64,
        workspace: &mut FlowWorkspace,
    ) -> MinCostResult {
        min_cost_flow_up_to(network, source, sink, target, workspace)
    }
}

/// Serialisable tag naming a [`MinCostBackend`] implementation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// The primal-dual reference kernel ([`PrimalDualBackend`]).
    #[default]
    PrimalDual,
    /// The network simplex ([`crate::simplex::NetworkSimplexBackend`]).
    NetworkSimplex,
    /// The Monge/greedy product-form backend
    /// ([`crate::monge::MongeBackend`]): certified instances are solved by
    /// a pivot-free greedy sweep, everything else falls through to the
    /// simplex.
    Monge,
}

impl BackendKind {
    /// Every available backend, reference first.
    pub const ALL: [BackendKind; 3] = [
        BackendKind::PrimalDual,
        BackendKind::NetworkSimplex,
        BackendKind::Monge,
    ];

    /// The stable name used by configuration, CI and bench rows.
    pub fn name(&self) -> &'static str {
        match self {
            BackendKind::PrimalDual => "primal-dual",
            BackendKind::NetworkSimplex => "simplex",
            BackendKind::Monge => "monge",
        }
    }

    /// Parses the spellings accepted by `STRETCH_MINCOST_BACKEND`.
    pub fn parse(s: &str) -> Option<BackendKind> {
        match s.trim().to_ascii_lowercase().as_str() {
            "primal-dual" | "primaldual" | "reference" | "pd" => Some(BackendKind::PrimalDual),
            "simplex" | "network-simplex" | "networksimplex" | "ns" => {
                Some(BackendKind::NetworkSimplex)
            }
            "monge" | "greedy" | "product-form" | "productform" => Some(BackendKind::Monge),
            _ => None,
        }
    }

    /// Instantiates the backend this tag names, with every cross-solve
    /// warm-start tier enabled.
    pub fn instantiate(&self) -> Box<dyn MinCostBackend + Send> {
        self.instantiate_with(true)
    }

    /// Instantiates the backend this tag names, selecting whether it may
    /// keep solver state (basis memory) across solves.
    ///
    /// `warm_start = false` yields the *cold* reference configuration: every
    /// solve starts from scratch and [`MinCostBackend::warm_hint`] is
    /// ignored.  Results must be bit-identical either way — warm start is a
    /// speed lever, never a semantics lever.
    pub fn instantiate_with(&self, warm_start: bool) -> Box<dyn MinCostBackend + Send> {
        match self {
            BackendKind::PrimalDual => Box::new(PrimalDualBackend),
            BackendKind::NetworkSimplex => Box::new(
                crate::simplex::NetworkSimplexBackend::with_warm_start(warm_start),
            ),
            BackendKind::Monge => Box::new(crate::monge::MongeBackend::with_warm_start(warm_start)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_round_trip_through_their_names() {
        for kind in BackendKind::ALL {
            assert_eq!(BackendKind::parse(kind.name()), Some(kind));
            assert_eq!(kind.instantiate().name(), kind.name());
        }
        assert_eq!(
            BackendKind::parse("network-simplex"),
            Some(BackendKind::NetworkSimplex)
        );
        assert_eq!(BackendKind::parse("no-such-backend"), None);
    }

    #[test]
    fn primal_dual_backend_matches_the_kernel() {
        let build = || {
            let mut g = FlowNetwork::new(4);
            g.add_edge(0, 1, 1.0, 0.0);
            g.add_edge(1, 3, 1.0, 1.0);
            g.add_edge(0, 2, 1.0, 0.0);
            g.add_edge(2, 3, 1.0, 5.0);
            g
        };
        let mut ws = FlowWorkspace::new();
        let mut g1 = build();
        let r1 = PrimalDualBackend.solve_up_to(&mut g1, 0, 3, f64::INFINITY, &mut ws);
        let mut g2 = build();
        let r2 = crate::mincost::min_cost_max_flow(&mut g2, 0, 3);
        assert!((r1.flow - r2.flow).abs() < 1e-9);
        assert!((r1.cost - r2.cost).abs() < 1e-9);
    }
}
