//! Pluggable back-ends for the minimum-cost solve.
//!
//! The System-(2) re-allocation — the dominant per-event cost of the on-line
//! schedulers — bottoms out in one operation: *ship every demand at minimum
//! cost on a bipartite transportation network*.  Two algorithm families solve
//! it with very different constant factors, and which one wins depends on the
//! instance shape, so the operation is abstracted behind [`MinCostBackend`]:
//!
//! * [`PrimalDualBackend`] — the Hungarian-style primal-dual kernel of
//!   [`crate::mincost`], the **reference implementation**.  Every other
//!   backend is cross-checked against it by the differential-oracle test
//!   harness (`crates/core/tests/backend_diff.rs`).
//! * [`crate::simplex::NetworkSimplexBackend`] — a network simplex on a
//!   spanning-tree basis with strongly-feasible pivots, warm-startable from
//!   the previous solve's basis when the arc topology repeats.
//!
//! # Contract
//!
//! [`MinCostBackend::solve_up_to`] receives a residual network **carrying no
//! flow** (freshly built, or [`crate::FlowNetwork::reset`]); it must leave the
//! computed flow *in* the network (so callers read per-edge amounts with
//! [`crate::FlowNetwork::flow_on`]) and return the shipped value and its
//! cost.  The returned flow must be
//!
//! 1. of value at least `min(target, max-flow value)` — a backend may stop
//!    early once `target` is covered, or solve to the exact maximum;
//! 2. of minimum cost **among flows of its value** (the invariant feasibility
//!    checks and cost comparisons downstream rely on).
//!
//! Backend selection is threaded through the scheduling layer by
//! `stretch_core::SolverConfig`; [`BackendKind`] is the serialisable tag the
//! configuration, the CI test matrix (`STRETCH_MINCOST_BACKEND`) and the
//! bench rows use to name a backend.

use crate::graph::FlowNetwork;
use crate::mincost::{min_cost_flow_up_to, MinCostResult};
use crate::workspace::FlowWorkspace;

/// A minimum-cost flow solver usable by the scheduling layer.
///
/// Implementations are stateful (`&mut self`) so they can keep scratch
/// memory — and, for the network simplex, the previous spanning-tree basis —
/// alive across solves; see the module docs for the exact contract.
pub trait MinCostBackend {
    /// Stable display name (used by benches and diagnostics).
    fn name(&self) -> &'static str;

    /// Ships flow from `source` to `sink` at minimum cost, stopping once
    /// `target` units are shipped (or at the maximum flow if it is smaller).
    ///
    /// The network must carry no flow on entry; the computed flow is left in
    /// the network's residual state.
    fn solve_up_to(
        &mut self,
        network: &mut FlowNetwork,
        source: usize,
        sink: usize,
        target: f64,
        workspace: &mut FlowWorkspace,
    ) -> MinCostResult;
}

/// The reference backend: successive shortest paths in Hungarian primal-dual
/// form ([`crate::mincost::min_cost_flow_up_to`]).
///
/// Stateless — all scratch lives in the caller's [`FlowWorkspace`].
#[derive(Clone, Copy, Debug, Default)]
pub struct PrimalDualBackend;

impl MinCostBackend for PrimalDualBackend {
    fn name(&self) -> &'static str {
        "primal-dual"
    }

    fn solve_up_to(
        &mut self,
        network: &mut FlowNetwork,
        source: usize,
        sink: usize,
        target: f64,
        workspace: &mut FlowWorkspace,
    ) -> MinCostResult {
        min_cost_flow_up_to(network, source, sink, target, workspace)
    }
}

/// Serialisable tag naming a [`MinCostBackend`] implementation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// The primal-dual reference kernel ([`PrimalDualBackend`]).
    #[default]
    PrimalDual,
    /// The network simplex ([`crate::simplex::NetworkSimplexBackend`]).
    NetworkSimplex,
}

impl BackendKind {
    /// Every available backend, reference first.
    pub const ALL: [BackendKind; 2] = [BackendKind::PrimalDual, BackendKind::NetworkSimplex];

    /// The stable name used by configuration, CI and bench rows.
    pub fn name(&self) -> &'static str {
        match self {
            BackendKind::PrimalDual => "primal-dual",
            BackendKind::NetworkSimplex => "simplex",
        }
    }

    /// Parses the spellings accepted by `STRETCH_MINCOST_BACKEND`.
    pub fn parse(s: &str) -> Option<BackendKind> {
        match s.trim().to_ascii_lowercase().as_str() {
            "primal-dual" | "primaldual" | "reference" | "pd" => Some(BackendKind::PrimalDual),
            "simplex" | "network-simplex" | "networksimplex" | "ns" => {
                Some(BackendKind::NetworkSimplex)
            }
            _ => None,
        }
    }

    /// Instantiates the backend this tag names.
    pub fn instantiate(&self) -> Box<dyn MinCostBackend + Send> {
        match self {
            BackendKind::PrimalDual => Box::new(PrimalDualBackend),
            BackendKind::NetworkSimplex => Box::new(crate::simplex::NetworkSimplexBackend::new()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_round_trip_through_their_names() {
        for kind in BackendKind::ALL {
            assert_eq!(BackendKind::parse(kind.name()), Some(kind));
            assert_eq!(kind.instantiate().name(), kind.name());
        }
        assert_eq!(
            BackendKind::parse("network-simplex"),
            Some(BackendKind::NetworkSimplex)
        );
        assert_eq!(BackendKind::parse("no-such-backend"), None);
    }

    #[test]
    fn primal_dual_backend_matches_the_kernel() {
        let build = || {
            let mut g = FlowNetwork::new(4);
            g.add_edge(0, 1, 1.0, 0.0);
            g.add_edge(1, 3, 1.0, 1.0);
            g.add_edge(0, 2, 1.0, 0.0);
            g.add_edge(2, 3, 1.0, 5.0);
            g
        };
        let mut ws = FlowWorkspace::new();
        let mut g1 = build();
        let r1 = PrimalDualBackend.solve_up_to(&mut g1, 0, 3, f64::INFINITY, &mut ws);
        let mut g2 = build();
        let r2 = crate::mincost::min_cost_max_flow(&mut g2, 0, 3);
        assert!((r1.flow - r2.flow).abs() < 1e-9);
        assert!((r1.cost - r2.cost).abs() < 1e-9);
    }
}
