//! Reusable scratch memory for the flow solvers.
//!
//! The deadline-scheduling engine probes feasibility several times per
//! scheduling decision, and the on-line schedulers repeat that at every
//! arrival.  Each probe used to allocate its own BFS/search scratch
//! (`level`, adjacency cursors, a queue) — per probe *and*, for the min-cost
//! solver, per augmentation.  A [`FlowWorkspace`] owns all of those buffers
//! once; the `*_with` entry points of [`crate::maxflow`] and
//! [`crate::mincost`] borrow it, clear (never reallocate) what they need,
//! and leave the capacity behind for the next probe.

use std::collections::VecDeque;

/// Preallocated scratch buffers shared by all flow computations.
///
/// Create one per solver (or per scheduler run) and thread it through the
/// `*_with` functions; every buffer grows to the largest network seen and is
/// then reused allocation-free.
///
/// ```
/// use stretch_flow::{FlowWorkspace, TransportInstance};
///
/// let mut ws = FlowWorkspace::new();
/// let mut t = TransportInstance::new(1, 1);
/// t.set_demand(0, 1.0);
/// t.set_capacity(0, 2.0);
/// t.add_route(0, 0, 0.0);
/// // The same workspace serves every solve — probes, min-cost, cuts.
/// assert!(t.is_feasible_with(1e-6, &mut ws));
/// assert!(t.solve_min_cost_with(&mut ws).is_some());
/// ```
#[derive(Default)]
pub struct FlowWorkspace {
    /// Dinic: BFS levels.  The min-cost primal-dual reuses it as the
    /// admissible-reachability flag.
    pub(crate) level: Vec<i32>,
    /// Per-node adjacency cursor of the blocking-flow DFS (shared by Dinic
    /// and the primal-dual admissible sweep).
    pub(crate) iter_idx: Vec<usize>,
    /// BFS queue.
    pub(crate) queue: VecDeque<usize>,
    /// Primal-dual node potentials.
    pub(crate) potential: Vec<f64>,
    /// Primal-dual blocking flow: DFS stack membership flags.
    pub(crate) in_stack: Vec<bool>,
}

impl FlowWorkspace {
    /// Creates an empty workspace (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Grows every per-node buffer to at least `n` entries.
    pub(crate) fn ensure_nodes(&mut self, n: usize) {
        if self.level.len() < n {
            self.level.resize(n, -1);
            self.iter_idx.resize(n, 0);
            self.potential.resize(n, 0.0);
            self.in_stack.resize(n, false);
        }
        self.queue.clear();
    }
}
