//! Residual-graph representation shared by the max-flow and min-cost solvers.

use crate::FLOW_EPS;

/// One directed edge of the residual graph.
///
/// Edges are stored in pairs: edge `e` and its reverse `e ^ 1`, so pushing
/// flow on one automatically frees capacity on the other.
#[derive(Clone, Debug)]
pub struct Edge {
    /// Target node.
    pub to: usize,
    /// Remaining (residual) capacity.
    pub cap: f64,
    /// Cost per unit of flow (zero for pure max-flow usage).
    pub cost: f64,
    /// Original capacity when the edge was created (reverse edges start at 0).
    pub original_cap: f64,
}

/// A flow network with parallel-edge support and residual bookkeeping.
#[derive(Clone, Debug, Default)]
pub struct FlowNetwork {
    /// Adjacency list: for each node, indices into `edges`.
    adj: Vec<Vec<usize>>,
    /// Flat edge storage (forward/backward pairs).
    edges: Vec<Edge>,
}

impl FlowNetwork {
    /// Creates a network with `nodes` nodes and no edges.
    pub fn new(nodes: usize) -> Self {
        FlowNetwork {
            adj: vec![Vec::new(); nodes],
            edges: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Number of forward edges added by the user.
    pub fn num_edges(&self) -> usize {
        self.edges.len() / 2
    }

    /// Adds a node and returns its index.
    pub fn add_node(&mut self) -> usize {
        self.adj.push(Vec::new());
        self.adj.len() - 1
    }

    /// Clears the network down to `nodes` isolated nodes **without
    /// releasing memory**: every adjacency list and the edge storage keep
    /// their allocations, ready to be refilled by the same
    /// [`FlowNetwork::add_edge`] sequence a fresh [`FlowNetwork::new`]
    /// would receive.
    ///
    /// This is the in-place construction primitive behind the incremental
    /// event path: a persistent network is rebuilt per event with zero
    /// steady-state allocations, and — because the edge sequence is the
    /// same — with bit-identical edge handles and capacities.
    ///
    /// ```
    /// use stretch_flow::FlowNetwork;
    ///
    /// let mut g = FlowNetwork::new(2);
    /// g.add_edge(0, 1, 5.0, 1.0);
    /// g.rebuild(3);
    /// assert_eq!(g.num_nodes(), 3);
    /// assert_eq!(g.num_edges(), 0);
    /// let e = g.add_edge(0, 2, 2.0, 0.0);
    /// assert_eq!(e, 0, "edge handles restart from zero");
    /// ```
    pub fn rebuild(&mut self, nodes: usize) {
        for adjacency in &mut self.adj {
            adjacency.clear();
        }
        if self.adj.len() > nodes {
            self.adj.truncate(nodes);
        } else {
            self.adj.resize_with(nodes, Vec::new);
        }
        self.edges.clear();
    }

    /// Pre-allocates edge storage (`edges` forward edges and their
    /// reverses) and per-node adjacency capacity from an exact degree count.
    /// Purely an allocation hint for bulk construction.
    pub fn reserve(&mut self, edges: usize, degrees: &[usize]) {
        self.edges.reserve(2 * edges);
        for (node, &degree) in degrees.iter().enumerate() {
            if node < self.adj.len() {
                self.adj[node].reserve(degree);
            }
        }
    }

    /// Adds a directed edge `from -> to` with the given capacity and cost.
    ///
    /// Returns an edge handle usable with [`FlowNetwork::flow_on`].
    pub fn add_edge(&mut self, from: usize, to: usize, cap: f64, cost: f64) -> usize {
        assert!(
            from < self.adj.len() && to < self.adj.len(),
            "node out of range"
        );
        assert!(
            cap >= 0.0 && cap.is_finite(),
            "capacity must be finite and nonnegative"
        );
        let id = self.edges.len();
        self.edges.push(Edge {
            to,
            cap,
            cost,
            original_cap: cap,
        });
        self.edges.push(Edge {
            to: from,
            cap: 0.0,
            cost: -cost,
            original_cap: 0.0,
        });
        self.adj[from].push(id);
        self.adj[to].push(id + 1);
        id
    }

    /// Flow currently routed through a (forward) edge handle.
    pub fn flow_on(&self, edge: usize) -> f64 {
        let e = &self.edges[edge];
        (e.original_cap - e.cap).max(0.0)
    }

    /// Residual capacity of an edge.
    pub fn residual(&self, edge: usize) -> f64 {
        self.edges[edge].cap
    }

    /// Cost of an edge.
    pub fn cost_of(&self, edge: usize) -> f64 {
        self.edges[edge].cost
    }

    /// Iterates over the edge indices leaving `node`.
    pub fn edges_from(&self, node: usize) -> &[usize] {
        &self.adj[node]
    }

    /// Immutable access to an edge record.
    pub fn edge(&self, idx: usize) -> &Edge {
        &self.edges[idx]
    }

    /// Pushes `amount` of flow along edge `idx` (updating the reverse edge).
    pub fn push(&mut self, idx: usize, amount: f64) {
        self.edges[idx].cap -= amount;
        self.edges[idx ^ 1].cap += amount;
        if self.edges[idx].cap < 0.0 && self.edges[idx].cap > -FLOW_EPS {
            self.edges[idx].cap = 0.0;
        }
    }

    /// Resets all flow, restoring original capacities.
    pub fn reset(&mut self) {
        for e in &mut self.edges {
            e.cap = e.original_cap;
        }
    }

    /// Rebinds the capacity of a forward edge **in place**, preserving the
    /// flow currently routed through it.
    ///
    /// This is the primitive behind warm-started feasibility probes: a
    /// parametric solver updates bin capacities between probes without
    /// rebuilding adjacency lists, and keeps the previous residual flow
    /// whenever it still fits.  Returns `false` when the existing flow
    /// exceeds `cap` — the new capacity is recorded either way, but the
    /// caller must then [`FlowNetwork::reset`] before the next computation
    /// (partial per-edge flow removal would violate conservation).
    pub fn try_set_capacity(&mut self, edge: usize, cap: f64) -> bool {
        assert!(
            edge.is_multiple_of(2),
            "capacities are set on forward edges"
        );
        assert!(
            cap >= 0.0 && cap.is_finite(),
            "capacity must be finite and nonnegative"
        );
        let flow = self.flow_on(edge);
        self.edges[edge].original_cap = cap;
        if flow <= cap + FLOW_EPS {
            self.edges[edge].cap = (cap - flow).max(0.0);
            true
        } else {
            false
        }
    }

    /// Rebinds the cost of a forward edge (and of its reverse, negated) **in
    /// place**.
    ///
    /// Together with [`FlowNetwork::try_set_capacity`] this lets a parametric
    /// caller re-price a frozen topology between solves — the System-(2)
    /// route costs move with the objective `F` while the adjacency does not.
    pub fn set_cost(&mut self, edge: usize, cost: f64) {
        assert!(edge.is_multiple_of(2), "costs are set on forward edges");
        assert!(cost.is_finite(), "cost must be finite");
        self.edges[edge].cost = cost;
        self.edges[edge ^ 1].cost = -cost;
    }

    /// Total flow leaving `source` (sum of flow on its forward edges).
    pub fn outflow(&self, source: usize) -> f64 {
        self.adj[source]
            .iter()
            .filter(|&&idx| idx % 2 == 0)
            .map(|&idx| self.flow_on(idx))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_pairing_and_push() {
        let mut g = FlowNetwork::new(2);
        let e = g.add_edge(0, 1, 5.0, 1.0);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.flow_on(e), 0.0);
        g.push(e, 2.0);
        assert_eq!(g.flow_on(e), 2.0);
        assert_eq!(g.residual(e), 3.0);
        assert_eq!(g.residual(e ^ 1), 2.0);
        g.reset();
        assert_eq!(g.flow_on(e), 0.0);
    }

    #[test]
    fn try_set_capacity_preserves_fitting_flow() {
        let mut g = FlowNetwork::new(2);
        let e = g.add_edge(0, 1, 5.0, 0.0);
        g.push(e, 2.0);
        // Shrink above the flow: flow preserved, residual shrinks.
        assert!(g.try_set_capacity(e, 3.0));
        assert_eq!(g.flow_on(e), 2.0);
        assert_eq!(g.residual(e), 1.0);
        // Grow: flow preserved, residual grows.
        assert!(g.try_set_capacity(e, 10.0));
        assert_eq!(g.flow_on(e), 2.0);
        assert_eq!(g.residual(e), 8.0);
        // Shrink below the flow: rejected, reset required.
        assert!(!g.try_set_capacity(e, 1.0));
        g.reset();
        assert_eq!(g.flow_on(e), 0.0);
        assert_eq!(g.residual(e), 1.0);
    }

    #[test]
    fn rebuild_clears_topology_but_keeps_the_node_count_requested() {
        let mut g = FlowNetwork::new(3);
        let e = g.add_edge(0, 1, 4.0, 1.0);
        g.push(e, 2.0);
        g.rebuild(2);
        assert_eq!(g.num_nodes(), 2);
        assert_eq!(g.num_edges(), 0);
        assert!(g.edges_from(0).is_empty() && g.edges_from(1).is_empty());
        // Refilling reproduces a fresh network exactly: same handles, no
        // residue from the previous flow.
        let e = g.add_edge(0, 1, 4.0, 1.0);
        assert_eq!(e, 0);
        assert_eq!(g.flow_on(e), 0.0);
        assert_eq!(g.residual(e), 4.0);
        g.rebuild(5);
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn add_node_grows_graph() {
        let mut g = FlowNetwork::new(1);
        let n = g.add_node();
        assert_eq!(n, 1);
        assert_eq!(g.num_nodes(), 2);
    }

    #[test]
    #[should_panic(expected = "node out of range")]
    fn out_of_range_edge_panics() {
        let mut g = FlowNetwork::new(1);
        g.add_edge(0, 3, 1.0, 0.0);
    }

    #[test]
    fn outflow_counts_forward_edges_only() {
        let mut g = FlowNetwork::new(3);
        let a = g.add_edge(0, 1, 4.0, 0.0);
        let b = g.add_edge(0, 2, 4.0, 0.0);
        g.push(a, 1.5);
        g.push(b, 2.0);
        assert!((g.outflow(0) - 3.5).abs() < 1e-12);
    }
}
