//! Minimum-cost maximum-flow via successive shortest augmenting paths with
//! node potentials (Bellman-Ford initialisation, then Dijkstra).

use crate::graph::FlowNetwork;
use crate::workspace::FlowWorkspace;
use crate::FLOW_EPS;

/// Result of a min-cost max-flow computation.
#[derive(Clone, Debug)]
pub struct MinCostResult {
    /// Total flow value pushed from source to sink.
    pub flow: f64,
    /// Total cost `Σ flow(e) · cost(e)` of the pushed flow.
    pub cost: f64,
    /// Number of augmenting paths pushed (diagnostic).
    pub augmentations: usize,
    /// Number of primal-dual phases (one Dijkstra each; diagnostic).
    pub phases: usize,
}

/// Computes a maximum flow of minimum cost from `source` to `sink`.
///
/// Edge costs may be negative on input (they are handled by the Bellman-Ford
/// potential initialisation); after that every augmentation uses Dijkstra on
/// reduced costs, so the overall complexity is `O(F · E log V)` where `F` is
/// the number of augmentations.
///
/// This convenience wrapper allocates fresh scratch; hot paths should hold a
/// [`FlowWorkspace`] and call [`min_cost_max_flow_with`] instead.
pub fn min_cost_max_flow(network: &mut FlowNetwork, source: usize, sink: usize) -> MinCostResult {
    min_cost_max_flow_with(network, source, sink, &mut FlowWorkspace::new())
}

/// `true` when some residual edge carries a negative cost, in which case the
/// Bellman-Ford potential initialisation cannot be skipped.
fn has_negative_residual_cost(network: &FlowNetwork) -> bool {
    (0..network.num_nodes()).any(|u| {
        network.edges_from(u).iter().any(|&eid| {
            let e = network.edge(eid);
            e.cap > FLOW_EPS && e.cost < 0.0
        })
    })
}

/// [`min_cost_max_flow`] with caller-provided scratch buffers.
///
/// Two allocation/work savings over the naive loop:
///
/// * `dist`/`prev_edge`/the Dijkstra heap live in the workspace and are
///   cleared — not reallocated — for every augmentation;
/// * the `O(V·E)` Bellman-Ford potential initialisation runs only when some
///   residual edge actually has a negative cost.  The scheduler's
///   transportation networks use nonnegative costs (interval midpoints, or
///   zero for feasibility probes), so they skip it entirely.
pub fn min_cost_max_flow_with(
    network: &mut FlowNetwork,
    source: usize,
    sink: usize,
    workspace: &mut FlowWorkspace,
) -> MinCostResult {
    min_cost_flow_up_to(network, source, sink, f64::INFINITY, workspace)
}

/// [`min_cost_max_flow_with`] with an early-exit flow target.
///
/// Stops as soon as the pushed flow reaches `target`; the result is still a
/// minimum-cost flow *of its value* (the successive-shortest-path invariant),
/// so a caller that only needs `demand − ε` units skips the final
/// no-augmenting-path Dijkstra of the exact maximum.  Pass `f64::INFINITY`
/// for a true min-cost max-flow.
pub fn min_cost_flow_up_to(
    network: &mut FlowNetwork,
    source: usize,
    sink: usize,
    target: f64,
    workspace: &mut FlowWorkspace,
) -> MinCostResult {
    assert!(source < network.num_nodes() && sink < network.num_nodes());
    assert_ne!(source, sink);
    let n = network.num_nodes();
    workspace.ensure_nodes(n);
    let potential = &mut workspace.potential[..n];
    for p in potential.iter_mut() {
        *p = 0.0;
    }

    // Bellman-Ford to compute exact initial potentials; needed only when a
    // residual edge has a negative cost (zero potentials are already valid
    // otherwise).
    if has_negative_residual_cost(network) {
        for _ in 0..n {
            let mut changed = false;
            for u in 0..n {
                if potential[u] == f64::INFINITY {
                    continue;
                }
                for &eid in network.edges_from(u) {
                    let e = network.edge(eid);
                    if e.cap > FLOW_EPS && potential[u] + e.cost < potential[e.to] - 1e-12 {
                        potential[e.to] = potential[u] + e.cost;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }

    let mut total_flow = 0.0;
    let mut total_cost = 0.0;
    let mut augmentations = 0usize;
    let mut phases = 0usize;

    // Hungarian-style primal-dual: instead of one Dijkstra per phase, grow
    // the set `R` of nodes reachable from the source through *admissible*
    // (zero-reduced-cost) residual edges; when the sink is in `R`, push a
    // blocking flow over the admissible subgraph, otherwise raise the
    // potentials outside `R` by the smallest reduced cost crossing the
    // frontier (`δ`).  Every step is a plain `O(E)` scan — no heap, no
    // distance labels — which is markedly faster on the small, tie-rich
    // transportation networks the schedulers build (jobs of one databank
    // share their size, so admissible subgraphs are fat and `δ`-steps few).
    // Frontier candidates of the current phase: `(reduced cost, head node)`
    // of scanned non-admissible edges; filtered against final reachability
    // when the δ-step needs them.
    let mut frontier: Vec<(f64, usize)> = Vec::new();
    // Potentials only grow (by nonnegative δ), so one admissibility epsilon
    // per phase — scaled by the largest potential — avoids per-edge `abs`
    // arithmetic in the scans below.
    let mut max_potential = workspace.potential[..n]
        .iter()
        .fold(0.0f64, |m, &p| m.max(p.abs()));

    while total_flow < target {
        phases += 1;
        let adm_eps = 1e-9 * (1.0 + 2.0 * max_potential);
        // R := admissible reachability from the source (level doubles as
        // the membership flag).  Non-admissible frontier edges are recorded
        // along the way so the δ-step below needs no second edge scan.
        for l in workspace.level[..n].iter_mut() {
            *l = 0;
        }
        workspace.level[source] = 1;
        workspace.queue.clear();
        workspace.queue.push_back(source);
        frontier.clear();
        while let Some(u) = workspace.queue.pop_front() {
            for &eid in network.edges_from(u) {
                let e = network.edge(eid);
                if e.cap <= FLOW_EPS || workspace.level[e.to] != 0 {
                    continue;
                }
                let reduced = e.cost + workspace.potential[u] - workspace.potential[e.to];
                if reduced <= adm_eps {
                    workspace.level[e.to] = 1;
                    workspace.queue.push_back(e.to);
                } else {
                    frontier.push((reduced, e.to));
                }
            }
        }

        if workspace.level[sink] != 0 {
            // Blocking flow over the admissible subgraph: every augmenting
            // path at the current cost level, with one DFS sweep.
            for it in workspace.iter_idx[..n].iter_mut() {
                *it = 0;
            }
            let mut progressed = false;
            while total_flow < target {
                let pushed = admissible_push(
                    network,
                    source,
                    sink,
                    f64::INFINITY,
                    adm_eps,
                    workspace,
                    &mut total_cost,
                );
                if pushed <= FLOW_EPS {
                    break;
                }
                total_flow += pushed;
                progressed = true;
                augmentations += 1;
            }
            if !progressed {
                // Numerical guard: reachability and the DFS disagreed on an
                // admissibility edge case; avoid spinning.
                break;
            }
            continue;
        }

        // δ-step: the cheapest residual edge leaving R bounds how much the
        // outside potentials can rise before a new edge becomes admissible.
        // Candidates whose head joined R after they were scanned are stale
        // and dropped.
        let mut delta = f64::INFINITY;
        for &(reduced, to) in &frontier {
            if workspace.level[to] == 0 && reduced < delta {
                delta = reduced;
            }
        }
        if !delta.is_finite() || delta < 0.0 {
            // No augmenting path exists at any cost (or numerics degraded):
            // the flow is maximum.
            break;
        }
        for v in 0..n {
            if workspace.level[v] == 0 {
                workspace.potential[v] += delta;
            }
        }
        max_potential += delta;
    }

    MinCostResult {
        flow: total_flow,
        cost: total_cost,
        augmentations,
        phases,
    }
}

/// DFS step of the primal-dual blocking flow: follow residual edges of
/// (numerically) zero reduced cost.  `in_stack` guards against the zero-cost
/// two-cycles formed by an admissible edge and its reverse.
fn admissible_push(
    network: &mut FlowNetwork,
    u: usize,
    sink: usize,
    limit: f64,
    adm_eps: f64,
    workspace: &mut FlowWorkspace,
    total_cost: &mut f64,
) -> f64 {
    if u == sink {
        return limit;
    }
    workspace.in_stack[u] = true;
    while workspace.iter_idx[u] < network.edges_from(u).len() {
        let eid = network.edges_from(u)[workspace.iter_idx[u]];
        let (to, cap, cost) = {
            let e = network.edge(eid);
            (e.to, e.cap, e.cost)
        };
        if cap > FLOW_EPS && !workspace.in_stack[to] {
            let reduced = cost + workspace.potential[u] - workspace.potential[to];
            if reduced.abs() <= adm_eps {
                let pushed = admissible_push(
                    network,
                    to,
                    sink,
                    limit.min(cap),
                    adm_eps,
                    workspace,
                    total_cost,
                );
                if pushed > FLOW_EPS {
                    network.push(eid, pushed);
                    *total_cost += pushed * cost;
                    workspace.in_stack[u] = false;
                    return pushed;
                }
            }
        }
        workspace.iter_idx[u] += 1;
    }
    workspace.in_stack[u] = false;
    0.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6
    }

    #[test]
    fn single_cheap_path_is_preferred() {
        // Two parallel routes with different costs; max flow uses both but the
        // cheap one is saturated first so the cost is minimal.
        let mut g = FlowNetwork::new(4);
        let (s, a, b, t) = (0, 1, 2, 3);
        g.add_edge(s, a, 1.0, 0.0);
        g.add_edge(a, t, 1.0, 1.0); // cheap route, cap 1
        g.add_edge(s, b, 1.0, 0.0);
        g.add_edge(b, t, 1.0, 5.0); // expensive route, cap 1
        let r = min_cost_max_flow(&mut g, s, t);
        assert!(close(r.flow, 2.0));
        assert!(close(r.cost, 1.0 + 5.0));
    }

    #[test]
    fn chooses_cheapest_assignment() {
        // One unit of demand, two routes with costs 3 and 7 -> cost 3.
        let mut g = FlowNetwork::new(5);
        g.add_edge(4, 0, 1.0, 0.0);
        g.add_edge(0, 1, 1.0, 0.0);
        g.add_edge(1, 3, 5.0, 3.0);
        g.add_edge(0, 2, 1.0, 0.0);
        g.add_edge(2, 3, 5.0, 7.0);
        let r = min_cost_max_flow(&mut g, 4, 3);
        assert!(close(r.flow, 1.0));
        assert!(close(r.cost, 3.0));
    }

    #[test]
    fn fractional_split_when_cheap_capacity_is_limited() {
        // Demand 1.0; cheap route capacity 0.4 (cost 1), remainder on cost 2.
        let mut g = FlowNetwork::new(3);
        g.add_edge(0, 1, 1.0, 0.0);
        g.add_edge(1, 2, 0.4, 1.0);
        g.add_edge(1, 2, 10.0, 2.0);
        let r = min_cost_max_flow(&mut g, 0, 2);
        assert!(close(r.flow, 1.0));
        assert!(close(r.cost, 0.4 * 1.0 + 0.6 * 2.0));
    }

    #[test]
    fn empty_network_has_zero_flow() {
        let mut g = FlowNetwork::new(2);
        let r = min_cost_max_flow(&mut g, 0, 1);
        assert!(close(r.flow, 0.0));
        assert!(close(r.cost, 0.0));
    }

    #[test]
    fn negative_costs_are_supported() {
        // Route with negative cost is preferred.
        let mut g = FlowNetwork::new(4);
        g.add_edge(0, 1, 1.0, 0.0);
        g.add_edge(1, 3, 1.0, -2.0);
        g.add_edge(0, 2, 1.0, 0.0);
        g.add_edge(2, 3, 1.0, 4.0);
        let r = min_cost_max_flow(&mut g, 0, 3);
        assert!(close(r.flow, 2.0));
        assert!(close(r.cost, -2.0 + 4.0));
    }

    #[test]
    fn workspace_reuse_matches_fresh_solves() {
        let build = |cost: f64| {
            let mut g = FlowNetwork::new(4);
            g.add_edge(0, 1, 2.0, 0.0);
            g.add_edge(1, 3, 2.0, cost);
            g.add_edge(0, 2, 3.0, 0.0);
            g.add_edge(2, 3, 3.0, cost * 2.0);
            g
        };
        let mut ws = FlowWorkspace::new();
        for cost in [0.5, 1.0, 4.0] {
            let mut shared = build(cost);
            let mut fresh = build(cost);
            let a = min_cost_max_flow_with(&mut shared, 0, 3, &mut ws);
            let b = min_cost_max_flow(&mut fresh, 0, 3);
            assert!(close(a.flow, b.flow));
            assert!(close(a.cost, b.cost));
        }
    }

    #[test]
    fn max_flow_value_matches_dinic() {
        use crate::maxflow::max_flow;
        let build = || {
            let mut g = FlowNetwork::new(5);
            g.add_edge(0, 1, 2.0, 1.0);
            g.add_edge(0, 2, 3.0, 2.0);
            g.add_edge(1, 3, 1.5, 1.0);
            g.add_edge(2, 3, 2.5, 1.0);
            g.add_edge(1, 2, 1.0, 0.5);
            g.add_edge(3, 4, 3.5, 0.0);
            g
        };
        let mut g1 = build();
        let mut g2 = build();
        let mf = max_flow(&mut g1, 0, 4);
        let mc = min_cost_max_flow(&mut g2, 0, 4);
        assert!(close(mf.value, mc.flow));
    }
}
