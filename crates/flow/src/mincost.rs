//! Minimum-cost maximum-flow via successive shortest augmenting paths with
//! node potentials (Bellman-Ford initialisation, then Dijkstra).

use crate::graph::FlowNetwork;
use crate::FLOW_EPS;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Result of a min-cost max-flow computation.
#[derive(Clone, Debug)]
pub struct MinCostResult {
    /// Total flow value pushed from source to sink.
    pub flow: f64,
    /// Total cost `Σ flow(e) · cost(e)` of the pushed flow.
    pub cost: f64,
}

#[derive(PartialEq)]
struct HeapEntry {
    dist: f64,
    node: usize,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so the BinaryHeap becomes a min-heap on dist.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.node.cmp(&other.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Computes a maximum flow of minimum cost from `source` to `sink`.
///
/// Edge costs may be negative on input (they are handled by the Bellman-Ford
/// potential initialisation); after that every augmentation uses Dijkstra on
/// reduced costs, so the overall complexity is `O(F · E log V)` where `F` is
/// the number of augmentations.
pub fn min_cost_max_flow(network: &mut FlowNetwork, source: usize, sink: usize) -> MinCostResult {
    assert!(source < network.num_nodes() && sink < network.num_nodes());
    assert_ne!(source, sink);
    let n = network.num_nodes();
    let mut potential = vec![0.0f64; n];

    // Bellman-Ford to compute exact initial potentials (handles negative
    // costs on original edges).
    for _ in 0..n {
        let mut changed = false;
        for u in 0..n {
            if potential[u] == f64::INFINITY {
                continue;
            }
            for &eid in network.edges_from(u) {
                let e = network.edge(eid);
                if e.cap > FLOW_EPS && potential[u] + e.cost < potential[e.to] - 1e-12 {
                    potential[e.to] = potential[u] + e.cost;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    let mut total_flow = 0.0;
    let mut total_cost = 0.0;

    loop {
        // Dijkstra on reduced costs.
        let mut dist = vec![f64::INFINITY; n];
        let mut prev_edge = vec![usize::MAX; n];
        dist[source] = 0.0;
        let mut heap = BinaryHeap::new();
        heap.push(HeapEntry {
            dist: 0.0,
            node: source,
        });
        while let Some(HeapEntry { dist: d, node: u }) = heap.pop() {
            if d > dist[u] + 1e-12 {
                continue;
            }
            for &eid in network.edges_from(u) {
                let e = network.edge(eid);
                if e.cap <= FLOW_EPS {
                    continue;
                }
                let reduced = e.cost + potential[u] - potential[e.to];
                // Reduced costs should be nonnegative up to rounding.
                let reduced = reduced.max(0.0);
                let nd = d + reduced;
                if nd + 1e-12 < dist[e.to] {
                    dist[e.to] = nd;
                    prev_edge[e.to] = eid;
                    heap.push(HeapEntry {
                        dist: nd,
                        node: e.to,
                    });
                }
            }
        }
        if dist[sink].is_infinite() {
            break;
        }
        // Update potentials.
        for v in 0..n {
            if dist[v].is_finite() {
                potential[v] += dist[v];
            }
        }
        // Find bottleneck along the path.
        let mut bottleneck = f64::INFINITY;
        let mut v = sink;
        while v != source {
            let eid = prev_edge[v];
            bottleneck = bottleneck.min(network.edge(eid).cap);
            v = network.edge(eid ^ 1).to;
        }
        if bottleneck <= FLOW_EPS || !bottleneck.is_finite() {
            break;
        }
        // Push it.
        let mut v = sink;
        while v != source {
            let eid = prev_edge[v];
            total_cost += bottleneck * network.edge(eid).cost;
            network.push(eid, bottleneck);
            v = network.edge(eid ^ 1).to;
        }
        total_flow += bottleneck;
    }

    MinCostResult {
        flow: total_flow,
        cost: total_cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6
    }

    #[test]
    fn single_cheap_path_is_preferred() {
        // Two parallel routes with different costs; max flow uses both but the
        // cheap one is saturated first so the cost is minimal.
        let mut g = FlowNetwork::new(4);
        let (s, a, b, t) = (0, 1, 2, 3);
        g.add_edge(s, a, 1.0, 0.0);
        g.add_edge(a, t, 1.0, 1.0); // cheap route, cap 1
        g.add_edge(s, b, 1.0, 0.0);
        g.add_edge(b, t, 1.0, 5.0); // expensive route, cap 1
        let r = min_cost_max_flow(&mut g, s, t);
        assert!(close(r.flow, 2.0));
        assert!(close(r.cost, 1.0 + 5.0));
    }

    #[test]
    fn chooses_cheapest_assignment() {
        // One unit of demand, two routes with costs 3 and 7 -> cost 3.
        let mut g = FlowNetwork::new(4);
        g.add_edge(0, 1, 1.0, 0.0);
        g.add_edge(1, 3, 5.0, 3.0);
        g.add_edge(0, 2, 1.0, 0.0);
        g.add_edge(2, 3, 5.0, 7.0);
        // Cap total demand at 1 by inserting a super source edge.
        let mut g2 = FlowNetwork::new(5);
        g2.add_edge(4, 0, 1.0, 0.0);
        g2.add_edge(0, 1, 1.0, 0.0);
        g2.add_edge(1, 3, 5.0, 3.0);
        g2.add_edge(0, 2, 1.0, 0.0);
        g2.add_edge(2, 3, 5.0, 7.0);
        let r = min_cost_max_flow(&mut g2, 4, 3);
        assert!(close(r.flow, 1.0));
        assert!(close(r.cost, 3.0));
        let _ = g;
    }

    #[test]
    fn fractional_split_when_cheap_capacity_is_limited() {
        // Demand 1.0; cheap route capacity 0.4 (cost 1), remainder on cost 2.
        let mut g = FlowNetwork::new(3);
        g.add_edge(0, 1, 1.0, 0.0);
        g.add_edge(1, 2, 0.4, 1.0);
        g.add_edge(1, 2, 10.0, 2.0);
        let r = min_cost_max_flow(&mut g, 0, 2);
        assert!(close(r.flow, 1.0));
        assert!(close(r.cost, 0.4 * 1.0 + 0.6 * 2.0));
    }

    #[test]
    fn empty_network_has_zero_flow() {
        let mut g = FlowNetwork::new(2);
        let r = min_cost_max_flow(&mut g, 0, 1);
        assert!(close(r.flow, 0.0));
        assert!(close(r.cost, 0.0));
    }

    #[test]
    fn negative_costs_are_supported() {
        // Route with negative cost is preferred.
        let mut g = FlowNetwork::new(4);
        g.add_edge(0, 1, 1.0, 0.0);
        g.add_edge(1, 3, 1.0, -2.0);
        g.add_edge(0, 2, 1.0, 0.0);
        g.add_edge(2, 3, 1.0, 4.0);
        let r = min_cost_max_flow(&mut g, 0, 3);
        assert!(close(r.flow, 2.0));
        assert!(close(r.cost, -2.0 + 4.0));
    }

    #[test]
    fn max_flow_value_matches_dinic() {
        use crate::maxflow::max_flow;
        let build = || {
            let mut g = FlowNetwork::new(5);
            g.add_edge(0, 1, 2.0, 1.0);
            g.add_edge(0, 2, 3.0, 2.0);
            g.add_edge(1, 3, 1.5, 1.0);
            g.add_edge(2, 3, 2.5, 1.0);
            g.add_edge(1, 2, 1.0, 0.5);
            g.add_edge(3, 4, 3.5, 0.0);
            g
        };
        let mut g1 = build();
        let mut g2 = build();
        let mf = max_flow(&mut g1, 0, 4);
        let mc = min_cost_max_flow(&mut g2, 0, 4);
        assert!(close(mf.value, mc.flow));
    }
}
