//! A tiny multiply–rotate hasher for the solver's integer-keyed maps.
//!
//! The cross-event warm-start bookkeeping (basis memory in
//! [`crate::remap::BasisRemap`], residual carry in the scheduling layer)
//! performs thousands of map operations per *event*, keyed by small packed
//! integers.  `std`'s default SipHash is DoS-resistant but costs tens of
//! nanoseconds per key — measurably more than the pivot work the warm start
//! saves on paper-scale events.  These maps never see attacker-controlled
//! keys (they hold job ids and bin positions of a simulation), so an
//! FxHash-style multiply–rotate mix is the right trade.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Golden-ratio-derived odd multiplier (same constant family as rustc's
/// FxHash).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A non-cryptographic hasher: one rotate–xor–multiply round per word.
#[derive(Default)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.mix(n as u64);
    }
}

/// [`HashMap`] keyed through [`FxHasher`]: the map type for every
/// integer-keyed warm-start structure in the workspace.
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrips_packed_keys() {
        let mut m: FastMap<(u64, u64), i8> = FastMap::default();
        for i in 0..1000u64 {
            m.insert((i, i.wrapping_mul(7)), (i % 3) as i8);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(m.get(&(i, i.wrapping_mul(7))), Some(&((i % 3) as i8)));
        }
        assert_eq!(m.get(&(1000, 0)), None);
    }

    #[test]
    fn hashes_spread_sequential_keys() {
        // Sequential packed keys (the common case: job ids, bin positions)
        // must not collapse onto a few buckets.
        let mut seen = std::collections::HashSet::new();
        for i in 0..4096u64 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            seen.insert(h.finish() % 4096);
        }
        assert!(seen.len() > 2048, "only {} distinct buckets", seen.len());
    }
}
