//! Property-based tests on the scheduler implementations.
//!
//! Random small instances are generated structurally (not through the random
//! workload generator, so shrinking produces readable counter-examples) and
//! the fundamental invariants of the model are checked on every scheduler:
//! completions after releases, optimality of the off-line solver, work
//! conservation bounds, and determinism.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use stretch_core::deadline::STRETCH_TOL;
use stretch_core::offline::{offline_problem, optimal_max_stretch, OfflineBackend};
use stretch_core::{
    Bender98Scheduler, ListScheduler, MctScheduler, OfflineScheduler, OnlineScheduler,
    ParametricDeadlineSolver, Scheduler,
};
use stretch_platform::{Cluster, Databank, Platform, PlatformConfig, PlatformGenerator, Processor};
use stretch_workload::{Instance, Job, WorkloadConfig, WorkloadGenerator};

/// Builds a two-cluster platform from a compact description.
fn platform(speed_a: f64, speed_b: f64, shared_only: bool) -> Platform {
    let clusters = vec![
        Cluster {
            id: 0,
            speed: speed_a,
            processors: vec![0, 1],
            hosted_databanks: if shared_only { vec![0] } else { vec![0, 1] },
        },
        Cluster {
            id: 1,
            speed: speed_b,
            processors: vec![2, 3],
            hosted_databanks: vec![0, 1],
        },
    ];
    let processors = vec![
        Processor::new(0, 0, speed_a),
        Processor::new(1, 0, speed_a),
        Processor::new(2, 1, speed_b),
        Processor::new(3, 1, speed_b),
    ];
    let databanks = vec![
        Databank::new(0, "shared", 100.0),
        Databank::new(1, "restricted", 200.0),
    ];
    Platform::new(clusters, processors, databanks)
}

/// Strategy producing a small random instance.
fn instance_strategy() -> impl Strategy<Value = Instance> {
    (
        2.0f64..40.0,
        2.0f64..40.0,
        proptest::bool::ANY,
        proptest::collection::vec((0.0f64..30.0, 5.0f64..300.0, 0usize..2), 1..7),
    )
        .prop_map(|(speed_a, speed_b, shared_only, jobs)| {
            let platform = platform(speed_a, speed_b, shared_only);
            let jobs: Vec<Job> = jobs
                .into_iter()
                .enumerate()
                .map(|(i, (release, work, databank))| Job::new(i, release, work, databank))
                .collect();
            Instance::new(platform, jobs)
        })
}

fn fast_schedulers() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(ListScheduler::fcfs()),
        Box::new(ListScheduler::srpt()),
        Box::new(ListScheduler::spt()),
        Box::new(ListScheduler::swrpt()),
        Box::new(ListScheduler::bender02()),
        Box::new(MctScheduler::mct()),
        Box::new(MctScheduler::mct_div()),
    ]
}

fn optimisation_schedulers() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(OfflineScheduler::new()),
        Box::new(OnlineScheduler::online()),
        Box::new(OnlineScheduler::online_edf()),
        Box::new(OnlineScheduler::online_egdf()),
        Box::new(Bender98Scheduler::new()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn priority_and_greedy_schedulers_respect_model_invariants(instance in instance_strategy()) {
        let lower_bound = instance.total_work() / instance.platform.aggregate_speed();
        for scheduler in fast_schedulers() {
            let result = scheduler.schedule(&instance).unwrap();
            prop_assert_eq!(result.outcomes.len(), instance.num_jobs());
            for o in &result.outcomes {
                prop_assert!(o.completion >= o.release - 1e-9,
                    "{}: completion before release", scheduler.name());
            }
            prop_assert!(result.metrics.makespan >= lower_bound - 1e-6,
                "{}: makespan beats work conservation", scheduler.name());
        }
    }

    #[test]
    fn single_job_instances_are_served_at_full_eligible_speed(
        work in 10.0f64..500.0,
        release in 0.0f64..10.0,
        databank in 0usize..2,
        speed_a in 2.0f64..40.0,
        speed_b in 2.0f64..40.0,
    ) {
        let platform = platform(speed_a, speed_b, true);
        let eligible_speed = if databank == 0 {
            2.0 * speed_a + 2.0 * speed_b
        } else {
            2.0 * speed_b
        };
        let instance = Instance::new(platform, vec![Job::new(0, release, work, databank)]);
        let expected = release + work / eligible_speed;
        for scheduler in [
            Box::new(ListScheduler::srpt()) as Box<dyn Scheduler>,
            Box::new(MctScheduler::mct_div()),
            Box::new(OnlineScheduler::online()),
        ] {
            let result = scheduler.schedule(&instance).unwrap();
            prop_assert!((result.completion(0) - expected).abs() < 1e-3 * expected.max(1.0),
                "{}: completion {} vs expected {}", scheduler.name(),
                result.completion(0), expected);
        }
    }
}

/// Draws a random instance through the `stretch-workload` generator (the
/// distribution of §5.1), scaled to roughly `target_jobs` jobs.
fn workload_instance(sites: usize, databanks: usize, target_jobs: usize, seed: u64) -> Instance {
    let mut rng = SmallRng::seed_from_u64(seed);
    let platform =
        PlatformGenerator::new(PlatformConfig::new(sites, databanks, 0.6)).generate(&mut rng);
    let probe = WorkloadGenerator::new(WorkloadConfig {
        density: 1.2,
        window: 1.0,
        scan_fraction: 1.0,
        ..Default::default()
    });
    let rate = probe.expected_job_count(&platform).max(1e-9);
    let generator = WorkloadGenerator::new(WorkloadConfig {
        density: 1.2,
        window: (target_jobs as f64 / rate).max(1e-3),
        scan_fraction: 1.0,
        ..Default::default()
    });
    generator.generate_instance(platform, &mut rng)
}

proptest! {
    // The parametric engine against the from-scratch reference, on the
    // paper's own workload distribution.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn parametric_solver_matches_the_from_scratch_path(seed in 0u64..10_000) {
        let instance = workload_instance(3, 3, 10, seed);
        let problem = offline_problem(&instance);
        let mut solver = ParametricDeadlineSolver::new();

        // Same optimal stretch, within the bisection tolerance.
        let fast = solver.min_feasible_stretch(&problem).expect("feasible");
        let slow = problem.min_feasible_stretch_reference().expect("feasible");
        prop_assert!(
            (fast - slow).abs() <= STRETCH_TOL * slow.abs().max(1.0),
            "parametric {fast} vs reference {slow} (seed {seed})"
        );

        // A feasible allocation identical in total work to the from-scratch
        // path (and to the total remaining work).
        let slack = fast.max(slow) * (1.0 + 1e-4) + 1e-9;
        let plan_fast = solver
            .system2_allocation(&problem, slack)
            .expect("allocation feasible at slack");
        let plan_slow = problem
            .system2_allocation(slack)
            .expect("allocation feasible at slack");
        let total_fast: f64 = plan_fast.pieces.iter().map(|p| p.work).sum();
        let total_slow: f64 = plan_slow.pieces.iter().map(|p| p.work).sum();
        let remaining: f64 = problem.jobs.iter().map(|j| j.remaining).sum();
        let tol = 1e-6_f64.max(remaining * 1e-6);
        prop_assert!(
            (total_fast - total_slow).abs() <= tol,
            "total work {total_fast} vs {total_slow} (seed {seed})"
        );
        prop_assert!(
            (total_fast - remaining).abs() <= tol,
            "total work {total_fast} vs remaining {remaining} (seed {seed})"
        );
        // Per-job totals also agree: every job ships its remaining work.
        for (j, job) in problem.jobs.iter().enumerate() {
            prop_assert!(
                (plan_fast.work_of(j) - job.remaining).abs()
                    <= 1e-6_f64.max(job.remaining * 1e-6),
                "job {j} shipped {} of {} (seed {seed})",
                plan_fast.work_of(j),
                job.remaining
            );
        }
    }
}

proptest! {
    // The LP/flow-based schedulers are slower, so fewer cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn optimisation_schedulers_respect_model_invariants(instance in instance_strategy()) {
        for scheduler in optimisation_schedulers() {
            let result = scheduler.schedule(&instance).unwrap();
            prop_assert_eq!(result.outcomes.len(), instance.num_jobs());
            for o in &result.outcomes {
                prop_assert!(o.completion >= o.release - 1e-6,
                    "{}: completion before release", scheduler.name());
            }
        }
    }

    #[test]
    fn offline_optimum_is_a_lower_bound_for_every_scheduler(instance in instance_strategy()) {
        let optimum = optimal_max_stretch(&instance, OfflineBackend::Flow).unwrap().stretch
            * instance.platform.aggregate_speed();
        for scheduler in fast_schedulers().into_iter().chain(optimisation_schedulers()) {
            let result = scheduler.schedule(&instance).unwrap();
            prop_assert!(result.metrics.max_stretch >= optimum * (1.0 - 5e-3),
                "{} beat the optimum: {} < {}", scheduler.name(),
                result.metrics.max_stretch, optimum);
        }
    }

    #[test]
    fn online_variants_meet_the_recomputed_deadline_guarantee(instance in instance_strategy()) {
        // The on-line heuristics recompute the best achievable max-stretch at
        // every arrival; their realised max-stretch can exceed the off-line
        // optimum but stays within a small factor on these tiny instances.
        let optimum = optimal_max_stretch(&instance, OfflineBackend::Flow).unwrap().stretch
            * instance.platform.aggregate_speed();
        for scheduler in [OnlineScheduler::online(), OnlineScheduler::online_edf()] {
            let result = scheduler.schedule(&instance).unwrap();
            prop_assert!(result.metrics.max_stretch <= optimum * 5.0 + 1e-6,
                "{}: {} vs optimum {}", scheduler.name(),
                result.metrics.max_stretch, optimum);
        }
    }
}
