//! Differential-oracle harness for the min-cost backends.
//!
//! A second solver is only trustworthy if it provably agrees with the first,
//! so this suite cross-checks the alternative backends (network simplex,
//! Monge/greedy) against the primal-dual reference on proptest-generated
//! platforms and workloads, at two levels:
//!
//! * **transport level** — random bipartite transportation instances: both
//!   backends must agree on feasibility and on the minimum cost, and every
//!   solution must actually ship each demand within each capacity;
//! * **scheduler level** — random deadline problems (sites, databanks,
//!   pending jobs): at a feasible objective both backends' System-(2)
//!   allocations must have equal cost and both must be *feasible* plans
//!   (work conserved, bin capacities respected, eligibility respected).
//!
//! The vendored `proptest` stub does not shrink, so on a divergence the
//! harness minimises the counter-example itself — greedily dropping jobs
//! (or routes) while the divergence persists — and panics with the minimal
//! reproducer in the message.
//!
//! Together with `ProptestConfig::with_cases`, the two generators below
//! exercise well over 200 distinct instances per run.

use proptest::prelude::*;
use stretch_core::deadline::{AllocationPlan, DeadlineProblem, PendingJob};
use stretch_core::sites::{Site, SiteView};
use stretch_core::SolverConfig;
use stretch_flow::{FlowWorkspace, TransportInstance};

/// Relative/absolute tolerance for cost and work comparisons.
const TOL: f64 = 1e-6;

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= TOL * (1.0 + a.abs().max(b.abs()))
}

// ---------------------------------------------------------------------------
// Transport level
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
struct TransportCase {
    demands: Vec<f64>,
    capacities: Vec<f64>,
    routes: Vec<(usize, usize, f64)>,
}

impl TransportCase {
    fn build(&self) -> TransportInstance {
        let mut t = TransportInstance::new(self.demands.len(), self.capacities.len());
        for (j, &d) in self.demands.iter().enumerate() {
            t.set_demand(j, d);
        }
        for (b, &c) in self.capacities.iter().enumerate() {
            t.set_capacity(b, c);
        }
        for &(j, b, cost) in &self.routes {
            t.add_route(j, b, cost);
        }
        t
    }

    /// `Some(divergence report)` when the backends disagree on this case.
    fn divergence(&self) -> Option<String> {
        let t = self.build();
        let mut results = Vec::new();
        for config in SolverConfig::all_backends() {
            let mut backend = config.instantiate();
            let solution =
                t.solve_min_cost_with_backend(backend.as_mut(), &mut FlowWorkspace::new());
            if let Some(s) = &solution {
                if let Some(err) = check_transport_feasibility(self, s) {
                    return Some(format!(
                        "{} produced an invalid solution: {err}",
                        backend.name()
                    ));
                }
            }
            results.push((backend.name(), solution.map(|s| s.cost)));
        }
        let (ref_name, ref_cost) = results[0];
        for (name, cost) in &results[1..] {
            match (&ref_cost, cost) {
                (Some(a), Some(b)) if !close(*a, *b) => {
                    return Some(format!("cost mismatch: {ref_name}={a} vs {name}={b}"));
                }
                (Some(_), None) | (None, Some(_)) => {
                    return Some(format!(
                        "feasibility mismatch: {ref_name}={ref_cost:?} vs {name}={cost:?}"
                    ));
                }
                _ => {}
            }
        }
        None
    }

    /// Greedy shrink: drop routes one at a time while the divergence holds.
    fn minimise(mut self) -> TransportCase {
        loop {
            let mut shrunk = false;
            for idx in (0..self.routes.len()).rev() {
                let mut candidate = self.clone();
                candidate.routes.remove(idx);
                if candidate.divergence().is_some() {
                    self = candidate;
                    shrunk = true;
                    break;
                }
            }
            if !shrunk {
                return self;
            }
        }
    }
}

/// Every demand shipped, every capacity respected, every amount on a
/// declared route.
fn check_transport_feasibility(
    case: &TransportCase,
    solution: &stretch_flow::TransportSolution,
) -> Option<String> {
    for (j, &d) in case.demands.iter().enumerate() {
        let shipped = solution.shipped_from(j);
        if !close(shipped, d) {
            return Some(format!("source {j} ships {shipped}, demand {d}"));
        }
    }
    for (b, &c) in case.capacities.iter().enumerate() {
        let received = solution.received_by(b);
        if received > c + TOL * (1.0 + c) {
            return Some(format!("bin {b} receives {received}, capacity {c}"));
        }
    }
    for &(j, b, amount) in &solution.allocations {
        if amount < -TOL {
            return Some(format!("negative amount {amount} on ({j}, {b})"));
        }
        if !case.routes.iter().any(|&(rj, rb, _)| rj == j && rb == b) {
            return Some(format!("allocation on undeclared route ({j}, {b})"));
        }
    }
    None
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn backends_agree_on_random_transport_instances(
        num_sources in 1usize..6,
        num_bins in 1usize..6,
        demand_seed in proptest::collection::vec(0.25f64..5.0, 1..6),
        capacity_seed in proptest::collection::vec(0.25f64..6.0, 1..6),
        cost_seed in proptest::collection::vec(0.0f64..8.0, 1..32),
        density in 0.3f64..1.0,
    ) {
        let demands: Vec<f64> = (0..num_sources)
            .map(|j| demand_seed[j % demand_seed.len()])
            .collect();
        let capacities: Vec<f64> = (0..num_bins)
            .map(|b| capacity_seed[b % capacity_seed.len()])
            .collect();
        let mut routes = Vec::new();
        for j in 0..num_sources {
            for b in 0..num_bins {
                let key = ((j * 31 + b * 17) % 10) as f64 / 10.0;
                if key <= density {
                    routes.push((j, b, cost_seed[(j * num_bins + b) % cost_seed.len()]));
                }
            }
        }
        let case = TransportCase { demands, capacities, routes };
        if let Some(report) = case.divergence() {
            let minimal = case.minimise();
            prop_assert!(
                false,
                "backend divergence: {report}\nminimal reproducer: {minimal:?}"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Scheduler level
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
struct SchedulerCase {
    sites: Vec<(f64, Vec<usize>)>,
    jobs: Vec<(f64, f64, usize)>, // (release, work, databank)
}

impl SchedulerCase {
    fn problem(&self) -> DeadlineProblem {
        let sites = SiteView {
            sites: self
                .sites
                .iter()
                .enumerate()
                .map(|(cluster, (speed, banks))| Site {
                    cluster,
                    speed: *speed,
                    hosted_databanks: banks.clone(),
                })
                .collect(),
        };
        let jobs = self
            .jobs
            .iter()
            .enumerate()
            .map(|(id, &(release, work, databank))| PendingJob {
                job_id: id,
                release,
                ready: release,
                work,
                remaining: work,
                databank,
            })
            .collect();
        DeadlineProblem::new(jobs, sites, 0.0)
    }

    /// System-(2) objective value of a plan (interval midpoint over job
    /// size, summed over pieces), recomputed from first principles.
    fn objective(&self, plan: &AllocationPlan) -> f64 {
        plan.pieces
            .iter()
            .map(|p| {
                let (start, end) = plan.intervals[p.interval];
                p.work * 0.5 * (start + end) / self.jobs[p.job_index].1
            })
            .sum()
    }

    /// The plan ships every remaining unit within capacity and eligibility.
    fn check_plan_feasibility(
        &self,
        problem: &DeadlineProblem,
        stretch: f64,
        plan: &AllocationPlan,
    ) -> Option<String> {
        for (j, job) in problem.jobs.iter().enumerate() {
            let assigned = plan.work_of(j);
            if !close(assigned, job.remaining) {
                return Some(format!(
                    "job {j} assigned {assigned}, remaining {}",
                    job.remaining
                ));
            }
        }
        let mut received = vec![0.0; problem.sites.len() * plan.intervals.len()];
        for p in &plan.pieces {
            let job = &problem.jobs[p.job_index];
            let site = &problem.sites.sites[p.site];
            if !site.hosts(job.databank) {
                return Some(format!(
                    "piece of job {} on site {} which does not host databank {}",
                    p.job_index, p.site, job.databank
                ));
            }
            let (start, end) = plan.intervals[p.interval];
            let deadline = job.deadline(stretch);
            if job.ready > start + 1e-6 || deadline < end - 1e-6 {
                return Some(format!(
                    "piece of job {} in [{start}, {end}) outside [{}, {deadline}]",
                    p.job_index, job.ready
                ));
            }
            received[p.site * plan.intervals.len() + p.interval] += p.work;
        }
        for (bin, &r) in received.iter().enumerate() {
            let site = bin / plan.intervals.len();
            let (start, end) = plan.intervals[bin % plan.intervals.len()];
            let capacity = problem.sites.sites[site].speed * (end - start);
            if r > capacity + TOL * (1.0 + capacity) {
                return Some(format!("bin {bin} receives {r}, capacity {capacity}"));
            }
        }
        None
    }

    /// `Some(report)` when the backends diverge on this problem.
    fn divergence(&self) -> Option<String> {
        let problem = self.problem();
        if problem.is_trivial() {
            return None;
        }
        let best = problem.min_feasible_stretch()?;
        let stretch = stretch_core::deadline::certified_slack(best);
        let mut plans = Vec::new();
        for config in SolverConfig::all_backends() {
            let mut backend = config.instantiate();
            let plan = problem.system2_allocation_with_backend(
                stretch,
                backend.as_mut(),
                &mut FlowWorkspace::new(),
            );
            let Some(plan) = plan else {
                return Some(format!(
                    "{} found the certified objective {stretch} infeasible",
                    backend.name()
                ));
            };
            if let Some(err) = self.check_plan_feasibility(&problem, stretch, &plan) {
                return Some(format!(
                    "{} produced an infeasible plan: {err}",
                    backend.name()
                ));
            }
            plans.push((backend.name(), self.objective(&plan)));
        }
        let (ref_name, ref_cost) = plans[0];
        for &(name, cost) in &plans[1..] {
            if !close(ref_cost, cost) {
                return Some(format!(
                    "System-(2) objective mismatch: {ref_name}={ref_cost} vs {name}={cost}"
                ));
            }
        }
        None
    }

    /// Greedy shrink: drop jobs one at a time while the divergence holds.
    fn minimise(mut self) -> SchedulerCase {
        loop {
            let mut shrunk = false;
            for idx in (0..self.jobs.len()).rev() {
                let mut candidate = self.clone();
                candidate.jobs.remove(idx);
                if candidate.divergence().is_some() {
                    self = candidate;
                    shrunk = true;
                    break;
                }
            }
            if !shrunk {
                return self;
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn backends_agree_on_random_deadline_problems(
        num_sites in 1usize..4,
        num_banks in 1usize..4,
        speed_seed in proptest::collection::vec(0.5f64..4.0, 1..4),
        hosting_seed in proptest::collection::vec(0u64..1_000_000, 1..12),
        release_seed in proptest::collection::vec(0.0f64..6.0, 1..8),
        work_seed in proptest::collection::vec(0.5f64..5.0, 1..8),
        num_jobs in 1usize..8,
    ) {
        // Sites: pseudo-random hosting pattern; every databank is forced
        // onto at least one site so a finite stretch always exists.
        let mut sites: Vec<(f64, Vec<usize>)> = (0..num_sites)
            .map(|s| {
                let speed = speed_seed[s % speed_seed.len()];
                let banks: Vec<usize> = (0..num_banks)
                    .filter(|&d| hosting_seed[(s * num_banks + d) % hosting_seed.len()] % 2 == 0)
                    .collect();
                (speed, banks)
            })
            .collect();
        for d in 0..num_banks {
            if !sites.iter().any(|(_, banks)| banks.contains(&d)) {
                let fallback = d % num_sites;
                sites[fallback].1.push(d);
            }
        }
        let jobs: Vec<(f64, f64, usize)> = (0..num_jobs)
            .map(|j| {
                (
                    release_seed[j % release_seed.len()],
                    work_seed[j % work_seed.len()],
                    (hosting_seed[j % hosting_seed.len()] as usize) % num_banks,
                )
            })
            .collect();
        let case = SchedulerCase { sites, jobs };
        if let Some(report) = case.divergence() {
            let minimal = case.minimise();
            prop_assert!(
                false,
                "backend divergence: {report}\nminimal reproducer: {minimal:?}"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Warm vs cold: cross-event solver memory must be invisible in the results
// ---------------------------------------------------------------------------
//
// `warm_start` carries two kinds of state across the events of an on-line
// run: the network simplex remaps its spanning-tree basis onto the next
// event's System-(2) network (stretch_flow::BasisRemap), and the parametric
// deadline solver replays the previous event's residual flow into the next
// event's first feasibility probe.  The contract is that both are pure speed
// levers: a warm-started run returns **bit-identical** objectives,
// allocations and completions to a cold run.  (The solver earns this with a
// lexicographic tie-break and a canonical basis extraction — the System-(2)
// costs are site-tied, so without them each start basis would legitimately
// land on a different optimal vertex.)

/// Runs one instance through the on-line loop warm and cold and reports the
/// first bitwise divergence, if any.
fn warm_cold_divergence(instance: &stretch_workload::Instance) -> Option<String> {
    use stretch_core::online::run_online_with;
    use stretch_core::OnlineVariant;

    for config in SolverConfig::all_backends() {
        let warm = run_online_with(
            instance,
            OnlineVariant::Online,
            config.with_warm_start(true),
        );
        let cold = run_online_with(
            instance,
            OnlineVariant::Online,
            config.with_warm_start(false),
        );
        match (warm, cold) {
            (Ok(w), Ok(c)) => {
                for (job, (a, b)) in w.iter().zip(&c).enumerate() {
                    if a.to_bits() != b.to_bits() {
                        return Some(format!(
                            "{}: job {job} completes at {a:?} warm vs {b:?} cold",
                            config.backend.name()
                        ));
                    }
                }
            }
            (w, c) => {
                return Some(format!(
                    "{}: warm {:?} vs cold {:?}",
                    config.backend.name(),
                    w.is_ok(),
                    c.is_ok()
                ))
            }
        }
    }
    None
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomised event streams (every distinct release date is an event at
    /// which the solver re-runs): completions must be bit-identical with
    /// cross-event solver memory on and off, on both backends.
    #[test]
    fn warm_and_cold_event_streams_are_bit_identical(
        num_jobs in 3usize..14,
        release_seed in proptest::collection::vec(0.0f64..10.0, 1..12),
        work_seed in proptest::collection::vec(20.0f64..400.0, 1..12),
        bank_seed in proptest::collection::vec(0u64..1_000, 1..12),
    ) {
        use stretch_platform::fixtures::small_platform;
        use stretch_workload::{Instance, Job};

        let jobs: Vec<Job> = (0..num_jobs)
            .map(|j| {
                Job::new(
                    j,
                    release_seed[j % release_seed.len()] * (1.0 + 0.13 * j as f64),
                    work_seed[j % work_seed.len()] * (1.0 + 0.07 * j as f64),
                    (bank_seed[j % bank_seed.len()] as usize) % 2,
                )
            })
            .collect();
        let instance = Instance::new(small_platform(), jobs);
        if let Some(report) = warm_cold_divergence(&instance) {
            prop_assert!(false, "warm/cold divergence: {report}");
        }
    }
}

/// The solver-level version of the same contract, with the remap tier
/// *proven* to fire: a shared network-simplex backend is fed the System-(2)
/// instances of a synthetic event stream (jobs completing, jobs arriving,
/// intervals moving — so the topology never repeats exactly), and every
/// allocation must match a cold backend's bit for bit while the cross-event
/// basis remap is actually exercised.
#[test]
fn remapped_system2_solves_match_cold_solves_bitwise() {
    use stretch_flow::NetworkSimplexBackend;

    let sites = SiteView {
        sites: vec![
            Site {
                cluster: 0,
                speed: 1.0,
                hosted_databanks: vec![0],
            },
            Site {
                cluster: 1,
                speed: 2.0,
                hosted_databanks: vec![0, 1],
            },
        ],
    };
    let job = |id: usize, release: f64, work: f64, remaining: f64, bank: usize| PendingJob {
        job_id: id,
        release,
        ready: release,
        work,
        remaining,
        databank: bank,
    };
    // Four events: job 0 shrinks and completes, jobs 2/3 arrive, job 1
    // persists throughout — overlapping job sets, never-identical topology.
    let events: Vec<(f64, Vec<PendingJob>)> = vec![
        (
            0.0,
            vec![job(0, 0.0, 4.0, 4.0, 0), job(1, 0.0, 3.0, 3.0, 1)],
        ),
        (
            1.0,
            vec![
                job(0, 0.0, 4.0, 2.5, 0),
                job(1, 0.0, 3.0, 2.0, 1),
                job(2, 1.0, 2.0, 2.0, 0),
            ],
        ),
        (
            2.5,
            vec![
                job(1, 0.0, 3.0, 1.0, 1),
                job(2, 1.0, 2.0, 1.25, 0),
                job(3, 2.5, 5.0, 5.0, 1),
            ],
        ),
        (
            4.0,
            vec![job(2, 1.0, 2.0, 0.5, 0), job(3, 2.5, 5.0, 3.0, 1)],
        ),
    ];

    let mut warm = NetworkSimplexBackend::new();
    let mut warm_ws = FlowWorkspace::new();
    for (now, jobs) in &events {
        let problem = DeadlineProblem::new(jobs.clone(), sites.clone(), *now);
        let best = problem.min_feasible_stretch().expect("feasible");
        let stretch = stretch_core::deadline::certified_slack(best);
        let warm_plan = problem
            .system2_allocation_with_backend(stretch, &mut warm, &mut warm_ws)
            .expect("feasible warm");
        let mut cold = NetworkSimplexBackend::with_warm_start(false);
        let cold_plan = problem
            .system2_allocation_with_backend(stretch, &mut cold, &mut FlowWorkspace::new())
            .expect("feasible cold");
        assert_eq!(
            warm_plan.pieces.len(),
            cold_plan.pieces.len(),
            "piece count diverged at t={now}"
        );
        for (w, c) in warm_plan.pieces.iter().zip(&cold_plan.pieces) {
            assert_eq!(
                (w.job_index, w.site, w.interval),
                (c.job_index, c.site, c.interval),
                "piece placement diverged at t={now}"
            );
            assert_eq!(
                w.work.to_bits(),
                c.work.to_bits(),
                "piece amount diverged at t={now}: {} vs {}",
                w.work,
                c.work
            );
        }
    }
    assert!(
        warm.remap_count() >= 2,
        "the cross-event basis remap never fired ({} remaps): the warm/cold \
         test would be vacuous",
        warm.remap_count()
    );
    assert_eq!(warm.fallback_count(), 0);
}

// ---------------------------------------------------------------------------
// End-to-end: the full on-line loop on either backend
// ---------------------------------------------------------------------------

#[test]
fn online_schedulers_complete_identical_workloads_on_both_backends() {
    use stretch_core::{OnlineScheduler, OnlineVariant, Scheduler};
    use stretch_platform::fixtures::small_platform;
    use stretch_workload::{Instance, Job};

    let instance = Instance::new(
        small_platform(),
        vec![
            Job::new(0, 0.0, 300.0, 0),
            Job::new(1, 1.0, 60.0, 1),
            Job::new(2, 2.5, 120.0, 0),
            Job::new(3, 4.0, 30.0, 1),
            Job::new(4, 6.0, 90.0, 0),
        ],
    );
    for variant in [
        OnlineVariant::Online,
        OnlineVariant::OnlineEdf,
        OnlineVariant::OnlineEgdf,
    ] {
        let results: Vec<_> = SolverConfig::all_backends()
            .map(|config| {
                OnlineScheduler::with_config(variant, config)
                    .schedule(&instance)
                    .expect("schedulable")
            })
            .collect();
        // Both backends realise (near-)optimal max-stretch: the achieved
        // objective may differ only within the allocation slack, whatever
        // degenerate optimum each backend picked.
        let reference = results[0].metrics.max_stretch;
        for r in &results[1..] {
            assert!(
                (r.metrics.max_stretch - reference).abs() <= 1e-3 * (1.0 + reference),
                "{variant:?}: max-stretch {} vs reference {reference}",
                r.metrics.max_stretch
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Monge leg: the product-form greedy backend against the canonical simplex
// ---------------------------------------------------------------------------
//
// The `monge` backend promises more than cost agreement: on instances its
// detector certifies (product-form costs, per-job contiguous bin ladders) the
// greedy-seeded solve must be **bit-identical** to a `simplex` solve of the
// same instance, and on everything else it must provably route through the
// simplex fallback (where bit-identity holds trivially — it *is* the
// simplex).  The proptest below generates instances on both sides of the
// certification boundary and asserts the verdict *and* the bits; the
// regression test underneath pins the detector's verdict on a real 3-cluster
// event stream, so the greedy path can never silently stop firing on the
// workload it was built for.

#[derive(Clone, Debug)]
enum MongeShape {
    /// Product-form costs, contiguous spans: the detector must certify.
    Certified,
    /// One route cost perturbed off the product surface: must fall back.
    PerturbedCost,
    /// One middle rung removed from a job's ladder: must fall back.
    LadderHole,
}

fn monge_case(
    shape: &MongeShape,
    num_jobs: usize,
    num_bins: usize,
    a_seed: &[f64],
    v_seed: &[f64],
    demand_seed: &[f64],
) -> TransportCase {
    // Bin values strictly increasing *by construction* whatever v_seed
    // holds (v_seed ∈ [0.5, 3.0), stride 4 ⇒ each rung clears the previous
    // by ≥1.5 — far beyond the detector's 1e-9 grouping tolerance).  The
    // LadderHole expectation depends on this: bin 1 must be a *middle*
    // rung, else removing it leaves a legitimately contiguous ladder.
    let values: Vec<f64> = (0..num_bins)
        .map(|b| 4.0 * b as f64 + v_seed[b % v_seed.len()])
        .collect();
    let demands: Vec<f64> = (0..num_jobs)
        .map(|j| demand_seed[j % demand_seed.len()])
        .collect();
    // Ample capacity: the greedy sweep can never strand demand, so a
    // certified structure is guaranteed to take the greedy path.
    let total: f64 = demands.iter().sum();
    let capacities = vec![total + 1.0; num_bins];
    let mut routes = Vec::new();
    for j in 0..num_jobs {
        let a = a_seed[j % a_seed.len()];
        for (b, &value) in values.iter().enumerate() {
            if matches!(shape, MongeShape::LadderHole) && num_bins >= 3 && j == 0 && b == 1 {
                continue; // job 0 skips the middle rung
            }
            let mut cost = a * value;
            if matches!(shape, MongeShape::PerturbedCost) && num_jobs >= 2 && j == 0 && b == 0 {
                cost *= 1.37; // off the product surface
            }
            routes.push((j, b, cost));
        }
    }
    TransportCase {
        demands,
        capacities,
        routes,
    }
}

/// Whether this generated shape must certify (the degenerate sizes where a
/// perturbation or hole cannot be expressed stay certified).
fn must_certify(shape: &MongeShape, num_jobs: usize, num_bins: usize) -> bool {
    match shape {
        MongeShape::Certified => true,
        // A perturbation only breaks the product form when the route graph
        // has a cycle through it (two jobs sharing two bins); on a tree any
        // cost assignment is trivially product-form.
        MongeShape::PerturbedCost => num_jobs < 2 || num_bins < 2,
        // A hole is only observable when another job keeps the skipped bin
        // on the ladder; with one job the bin drops out of the universe and
        // the remaining rungs are legitimately contiguous.
        MongeShape::LadderHole => num_jobs < 2 || num_bins < 3,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Instances on both sides of the certification boundary: the detector's
    /// verdict is as constructed, certified solves match the simplex bit for
    /// bit, and uncertified ones provably took the fallback (and, being the
    /// fallback, match trivially — asserted anyway).
    #[test]
    fn monge_verdicts_and_bits_match_the_construction(
        shape_pick in 0usize..3,
        num_jobs in 1usize..6,
        num_bins in 1usize..6,
        a_seed in proptest::collection::vec(0.2f64..4.0, 1..6),
        v_seed in proptest::collection::vec(0.5f64..3.0, 1..6),
        demand_seed in proptest::collection::vec(0.25f64..5.0, 1..6),
    ) {
        use stretch_flow::MongeBackend;

        let shape = [MongeShape::Certified, MongeShape::PerturbedCost, MongeShape::LadderHole]
            [shape_pick].clone();
        let case = monge_case(&shape, num_jobs, num_bins, &a_seed, &v_seed, &demand_seed);
        let t = case.build();
        let mut monge = MongeBackend::new();
        let monge_sol = t
            .solve_min_cost_with_backend(&mut monge, &mut FlowWorkspace::new())
            .expect("ample capacity: always feasible");
        let mut simplex = stretch_core::SolverConfig::network_simplex().instantiate();
        let simplex_sol = t
            .solve_min_cost_with_backend(simplex.as_mut(), &mut FlowWorkspace::new())
            .expect("ample capacity: always feasible");
        if must_certify(&shape, num_jobs, num_bins) {
            prop_assert_eq!(monge.certified_count(), 1, "detector must certify {:?}", shape);
            prop_assert_eq!(monge.uncertified_count(), 0);
        } else {
            prop_assert_eq!(
                monge.certified_count(), 0,
                "detector must reject {:?} (case: {:?})", shape, case
            );
            prop_assert_eq!(monge.uncertified_count(), 1, "fallback must fire for {:?}", shape);
        }
        prop_assert_eq!(monge.pivot_fallback_count(), 0);
        prop_assert_eq!(
            monge_sol.allocations.len(), simplex_sol.allocations.len(),
            "allocation support diverged ({:?})", shape
        );
        for (m, s) in monge_sol.allocations.iter().zip(&simplex_sol.allocations) {
            prop_assert_eq!((m.0, m.1), (s.0, s.1), "allocation placement diverged ({:?})", shape);
            prop_assert_eq!(
                m.2.to_bits(), s.2.to_bits(),
                "allocation amount diverged ({:?}): {} vs {}", shape, m.2, s.2
            );
        }
        prop_assert_eq!(monge_sol.cost.to_bits(), simplex_sol.cost.to_bits());
    }
}

/// Pins the detector's verdict on the per-event System-(2) instances of the
/// 3-cluster reference workload (the platform/workload the benches measure:
/// `bench_instance(3, 3, 20, 3)`): every event's instance is product-form
/// with contiguous ladders — the structure the backend was built to exploit
/// — so every solve must take the greedy path, match the shared-state
/// simplex bitwise, and never hit the pivot-budget fallback.  If a detector
/// or transport-builder change ever stops certification on this stream, the
/// `monge` backend silently degrades into a slower `simplex`; this test
/// makes that loud.
#[test]
fn monge_certifies_the_reference_event_stream() {
    use stretch_core::refstream::{capture_system2_events_with, reference_instance};
    use stretch_flow::{MongeBackend, NetworkSimplexBackend};

    // The 3-cluster reference workload of the scheduler benches, with the
    // replay driven by an explicit monge configuration so the captured
    // stream is environment-independent (degenerate optima differ between
    // backends, and the process default follows the CI matrix cell).
    let instance = reference_instance(3, 3, 20, 3);
    let captured = capture_system2_events_with(&instance, stretch_core::SolverConfig::monge());

    let mut monge = MongeBackend::new();
    let mut monge_ws = FlowWorkspace::new();
    let mut simplex = NetworkSimplexBackend::new();
    let mut simplex_ws = FlowWorkspace::new();
    let solves = captured.len();
    for (problem, slack) in &captured {
        let now = problem.now;
        let monge_plan = problem
            .system2_allocation_with_backend(*slack, &mut monge, &mut monge_ws)
            .expect("feasible");
        let simplex_plan = problem
            .system2_allocation_with_backend(*slack, &mut simplex, &mut simplex_ws)
            .expect("feasible");
        assert_eq!(
            monge_plan.pieces.len(),
            simplex_plan.pieces.len(),
            "piece count diverged at t={now}"
        );
        for (m, s) in monge_plan.pieces.iter().zip(&simplex_plan.pieces) {
            assert_eq!(
                (m.job_index, m.site, m.interval),
                (s.job_index, s.site, s.interval),
                "piece placement diverged at t={now}"
            );
            assert_eq!(
                m.work.to_bits(),
                s.work.to_bits(),
                "piece amount diverged at t={now}: {} vs {}",
                m.work,
                s.work
            );
        }
    }
    assert!(
        solves >= 10,
        "the reference stream must exercise a real event sequence, got {solves}"
    );
    // The System-(2) instances of this stream are exactly the structure the
    // detector certifies: every solve takes the greedy path.
    assert_eq!(
        (monge.certified_count(), monge.uncertified_count()),
        (solves, 0),
        "detector verdict changed on the reference stream \
         (greedy declined {} of them)",
        monge.greedy_declined_count()
    );
    assert_eq!(monge.pivot_fallback_count(), 0);
}

/// The reference backend must also agree with the `stretch-lp` simplex on
/// the exact LP formulation — this closes the oracle triangle (primal-dual ↔
/// network simplex ↔ LP); the flow-vs-LP edge lives in
/// `crates/flow/tests/lp_cross_validation.rs`.
#[test]
fn both_backends_match_the_lp_simplex_on_a_fixed_instance() {
    use stretch_lp::problem::{Problem, Relation, Sense};

    let case = TransportCase {
        demands: vec![2.0, 3.0, 1.5],
        capacities: vec![3.0, 2.5, 4.0],
        routes: vec![
            (0, 0, 1.0),
            (0, 1, 4.0),
            (1, 0, 2.0),
            (1, 2, 1.0),
            (2, 1, 0.5),
            (2, 2, 3.0),
        ],
    };
    // LP oracle.
    let mut p = Problem::new(Sense::Minimize);
    let vars: Vec<_> = (0..case.routes.len())
        .map(|k| p.add_var(format!("x{k}")))
        .collect();
    for (k, &(_, _, cost)) in case.routes.iter().enumerate() {
        p.set_objective_coeff(vars[k], cost);
    }
    for (j, &d) in case.demands.iter().enumerate() {
        let coeffs: Vec<_> = case
            .routes
            .iter()
            .enumerate()
            .filter(|(_, &(src, _, _))| src == j)
            .map(|(k, _)| (vars[k], 1.0))
            .collect();
        p.add_constraint_coeffs(&coeffs, Relation::Eq, d);
    }
    for (b, &c) in case.capacities.iter().enumerate() {
        let coeffs: Vec<_> = case
            .routes
            .iter()
            .enumerate()
            .filter(|(_, &(_, bin, _))| bin == b)
            .map(|(k, _)| (vars[k], 1.0))
            .collect();
        p.add_constraint_coeffs(&coeffs, Relation::Le, c);
    }
    let lp_cost = p.solve().expect("feasible").objective;

    let t = case.build();
    for config in SolverConfig::all_backends() {
        let mut backend = config.instantiate();
        let solution = t
            .solve_min_cost_with_backend(backend.as_mut(), &mut FlowWorkspace::new())
            .expect("feasible");
        assert!(
            close(solution.cost, lp_cost),
            "{}: {} vs LP {}",
            backend.name(),
            solution.cost,
            lp_cost
        );
    }
}

// ---------------------------------------------------------------------------
// Incremental vs rebuild: persistent delta-updated structures must be
// invisible in the results
// ---------------------------------------------------------------------------
//
// `incremental` (STRETCH_INCREMENTAL, default on) keeps the System-(2)
// parametric structure alive across events and splices each event's delta
// into it (stretch_core::delta) instead of rebuilding from scratch.  Like
// warm_start, it is a pure speed lever: an incremental run must return
// **bit-identical** objectives, allocations and completions to a rebuild
// run, on every backend and in every warm/cold cell — the two axes are
// independent and must compose.

/// Runs one instance through the on-line loop with the incremental engine on
/// and off — across all three backends and both warm-start settings — and
/// reports the first bitwise divergence, if any.
fn incremental_rebuild_divergence(instance: &stretch_workload::Instance) -> Option<String> {
    use stretch_core::online::run_online_with;
    use stretch_core::OnlineVariant;

    for config in SolverConfig::all_backends() {
        for warm_start in [true, false] {
            let cell = config.with_warm_start(warm_start);
            let incremental =
                run_online_with(instance, OnlineVariant::Online, cell.with_incremental(true));
            let rebuild = run_online_with(
                instance,
                OnlineVariant::Online,
                cell.with_incremental(false),
            );
            match (incremental, rebuild) {
                (Ok(inc), Ok(reb)) => {
                    for (job, (a, b)) in inc.iter().zip(&reb).enumerate() {
                        if a.to_bits() != b.to_bits() {
                            return Some(format!(
                                "{} (warm_start={warm_start}): job {job} completes at \
                                 {a:?} incremental vs {b:?} rebuild",
                                config.backend.name()
                            ));
                        }
                    }
                }
                (i, r) => {
                    return Some(format!(
                        "{} (warm_start={warm_start}): incremental {:?} vs rebuild {:?}",
                        config.backend.name(),
                        i.is_ok(),
                        r.is_ok()
                    ))
                }
            }
        }
    }
    None
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Randomised event streams interleaving arrivals and completions (every
    /// distinct release date re-runs the solver; completions drop jobs from
    /// the pending set): completions must be bit-identical with the
    /// incremental engine on and off, across all three backends × warm/cold.
    #[test]
    fn incremental_and_rebuild_event_streams_are_bit_identical(
        num_jobs in 3usize..14,
        release_seed in proptest::collection::vec(0.0f64..10.0, 1..12),
        work_seed in proptest::collection::vec(20.0f64..400.0, 1..12),
        bank_seed in proptest::collection::vec(0u64..1_000, 1..12),
    ) {
        use stretch_platform::fixtures::small_platform;
        use stretch_workload::{Instance, Job};

        let jobs: Vec<Job> = (0..num_jobs)
            .map(|j| {
                Job::new(
                    j,
                    release_seed[j % release_seed.len()] * (1.0 + 0.13 * j as f64),
                    work_seed[j % work_seed.len()] * (1.0 + 0.07 * j as f64),
                    (bank_seed[j % bank_seed.len()] as usize) % 2,
                )
            })
            .collect();
        let instance = Instance::new(small_platform(), jobs);
        if let Some(report) = incremental_rebuild_divergence(&instance) {
            prop_assert!(false, "incremental/rebuild divergence: {report}");
        }
    }
}

/// The solver-level version of the same contract, with the splicer *proven*
/// to fire: a persistent incremental solver is fed a synthetic event stream
/// (arrivals, completions, a shrink to a single job, and an empty final
/// event — the edge shapes of the on-line loop), and every objective and
/// System-(2) allocation must match a per-event rebuild solver's bit for bit
/// while the delta path is actually exercised.
#[test]
fn incremental_solver_matches_rebuild_solver_bitwise_per_event() {
    use stretch_core::ParametricDeadlineSolver;

    let sites = SiteView {
        sites: vec![
            Site {
                cluster: 0,
                speed: 1.0,
                hosted_databanks: vec![0],
            },
            Site {
                cluster: 1,
                speed: 2.0,
                hosted_databanks: vec![0, 1],
            },
        ],
    };
    let job = |id: usize, release: f64, work: f64, remaining: f64, bank: usize| PendingJob {
        job_id: id,
        release,
        ready: release,
        work,
        remaining,
        databank: bank,
    };
    // Arrivals and completions interleaved; the last two events are the
    // edge shapes (single pending job, empty pending set).
    let events: Vec<(f64, Vec<PendingJob>)> = vec![
        (
            0.0,
            vec![job(0, 0.0, 4.0, 4.0, 0), job(1, 0.0, 3.0, 3.0, 1)],
        ),
        (
            1.0,
            vec![
                job(0, 0.0, 4.0, 2.5, 0),
                job(1, 0.0, 3.0, 2.0, 1),
                job(2, 1.0, 2.0, 2.0, 0),
            ],
        ),
        (
            2.5,
            vec![
                job(1, 0.0, 3.0, 1.0, 1),
                job(2, 1.0, 2.0, 1.25, 0),
                job(3, 2.5, 5.0, 5.0, 1),
            ],
        ),
        (4.0, vec![job(3, 2.5, 5.0, 3.0, 1)]),
        (7.0, vec![]),
    ];

    for base in SolverConfig::all_backends() {
        let mut incremental = ParametricDeadlineSolver::with_config(base.with_incremental(true));
        let mut rebuild = ParametricDeadlineSolver::with_config(base.with_incremental(false));
        assert!(rebuild.incremental_stats().is_none());
        for (now, jobs) in &events {
            let problem = DeadlineProblem::new(jobs.clone(), sites.clone(), *now);
            let inc_best = incremental.min_feasible_stretch(&problem);
            let reb_best = rebuild.min_feasible_stretch(&problem);
            match (inc_best, reb_best) {
                (Some(a), Some(b)) => assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{}: objective diverged at t={now}: {a} vs {b}",
                    base.backend.name()
                ),
                (a, b) => assert_eq!(a, b, "{}: verdict diverged at t={now}", base.backend.name()),
            }
            let Some(best) = inc_best else { continue };
            if problem.is_trivial() {
                continue;
            }
            let stretch = stretch_core::deadline::certified_slack(best);
            let inc_plan = incremental
                .system2_allocation(&problem, stretch)
                .expect("feasible incremental");
            let reb_plan = rebuild
                .system2_allocation(&problem, stretch)
                .expect("feasible rebuild");
            assert_eq!(
                inc_plan.pieces.len(),
                reb_plan.pieces.len(),
                "{}: piece count diverged at t={now}",
                base.backend.name()
            );
            for (i, r) in inc_plan.pieces.iter().zip(&reb_plan.pieces) {
                assert_eq!(
                    (i.job_index, i.site, i.interval),
                    (r.job_index, r.site, r.interval),
                    "{}: piece placement diverged at t={now}",
                    base.backend.name()
                );
                assert_eq!(
                    i.work.to_bits(),
                    r.work.to_bits(),
                    "{}: piece amount diverged at t={now}: {} vs {}",
                    base.backend.name(),
                    i.work,
                    r.work
                );
            }
        }
        let stats = incremental
            .incremental_stats()
            .expect("incremental engine present");
        assert!(
            stats.splices >= 3,
            "{}: the delta path never fired ({stats:?}): the incremental/rebuild \
             test would be vacuous",
            base.backend.name()
        );
        assert_eq!(
            stats.rebuilds,
            1,
            "{}: only the first event should rebuild ({stats:?})",
            base.backend.name()
        );
    }
}

/// Single-job and empty-instance edges of the incremental engine: the very
/// shapes where a splice-from-previous has the least structure to reuse.
#[test]
fn incremental_engine_handles_single_job_and_empty_edges() {
    use stretch_core::ParametricDeadlineSolver;

    let sites = SiteView {
        sites: vec![Site {
            cluster: 0,
            speed: 1.0,
            hosted_databanks: vec![0],
        }],
    };
    let job = |id: usize, release: f64, work: f64| PendingJob {
        job_id: id,
        release,
        ready: release,
        work,
        remaining: work,
        databank: 0,
    };
    for base in SolverConfig::all_backends() {
        let mut solver = ParametricDeadlineSolver::with_config(base.with_incremental(true));
        // Empty instance first: trivially zero, engine untouched.
        let empty = DeadlineProblem::new(vec![], sites.clone(), 0.0);
        assert_eq!(solver.min_feasible_stretch(&empty), Some(0.0));
        // A single job, then the same solver drained back to empty, then a
        // fresh single job again — each answer matches a fresh solver's.
        let single = DeadlineProblem::new(vec![job(0, 0.0, 2.0)], sites.clone(), 0.0);
        let a = solver.min_feasible_stretch(&single).expect("feasible");
        let fresh = ParametricDeadlineSolver::with_config(base.with_incremental(false))
            .min_feasible_stretch(&single)
            .expect("feasible");
        assert_eq!(a.to_bits(), fresh.to_bits());
        assert_eq!(solver.min_feasible_stretch(&empty), Some(0.0));
        let late = DeadlineProblem::new(vec![job(1, 5.0, 1.0)], sites.clone(), 5.0);
        let b = solver.min_feasible_stretch(&late).expect("feasible");
        let fresh_late = ParametricDeadlineSolver::with_config(base.with_incremental(false))
            .min_feasible_stretch(&late)
            .expect("feasible");
        assert_eq!(b.to_bits(), fresh_late.to_bits());
    }
}

/// Regression on the reference event stream: the captured System-(2)
/// certified verdicts (per-event problems and slack objectives) must be
/// bit-identical with the incremental engine on and off.  This pins the
/// whole solve pipeline — splice, refill, Newton, certification — on the
/// same 3-cluster workload the benches measure.
#[test]
fn incremental_capture_of_the_reference_stream_is_bit_identical() {
    use stretch_core::refstream::{capture_system2_events_with, reference_instance};

    let instance = reference_instance(3, 3, 20, 3);
    let base = stretch_core::SolverConfig::monge();
    let incremental = capture_system2_events_with(&instance, base.with_incremental(true));
    let rebuild = capture_system2_events_with(&instance, base.with_incremental(false));
    assert_eq!(incremental.len(), rebuild.len(), "event count diverged");
    assert!(
        incremental.len() >= 10,
        "the reference stream must exercise a real event sequence, got {}",
        incremental.len()
    );
    for (event, ((ip, islack), (rp, rslack))) in incremental.iter().zip(&rebuild).enumerate() {
        assert_eq!(
            islack.to_bits(),
            rslack.to_bits(),
            "certified slack diverged at event {event}: {islack} vs {rslack}"
        );
        assert_eq!(ip.now.to_bits(), rp.now.to_bits(), "event {event} time");
        assert_eq!(ip.jobs.len(), rp.jobs.len(), "event {event} pending set");
        for (a, b) in ip.jobs.iter().zip(&rp.jobs) {
            assert_eq!(a.job_id, b.job_id, "event {event} job identity");
            assert_eq!(
                a.remaining.to_bits(),
                b.remaining.to_bits(),
                "event {event} job {} remaining",
                a.job_id
            );
        }
    }
}
