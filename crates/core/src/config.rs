//! Solver configuration threaded through the scheduling layer.
//!
//! Every optimisation-based scheduler bottoms out in two flow solves: the
//! max-flow feasibility probes of the min-stretch search (backend-independent)
//! and the System-(2) min-cost re-allocation, which runs on a pluggable
//! [`MinCostBackend`](stretch_flow::MinCostBackend).  A [`SolverConfig`]
//! names the backend; it is carried by the schedulers
//! ([`crate::OnlineScheduler::with_config`],
//! [`crate::OfflineScheduler::with_config`],
//! [`crate::Bender98Scheduler::with_config`]) and by the reusable
//! [`crate::ParametricDeadlineSolver`].
//!
//! The **default** configuration reads the `STRETCH_MINCOST_BACKEND`
//! environment variable once per process (`primal-dual`, the reference, when
//! unset; `simplex` selects the network simplex; anything else aborts with
//! the offending string rather than silently falling back).  This is
//! how the CI test matrix runs the whole suite — schedulers, experiments,
//! property tests — on either backend without touching call sites.

use std::sync::OnceLock;
use stretch_flow::{BackendKind, MinCostBackend};

/// Configuration of the flow solvers used by the scheduling layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SolverConfig {
    /// Which engine solves the System-(2) min-cost transportation problems.
    pub backend: BackendKind,
}

impl SolverConfig {
    /// The primal-dual reference backend.
    pub fn primal_dual() -> Self {
        SolverConfig {
            backend: BackendKind::PrimalDual,
        }
    }

    /// The network-simplex backend.
    pub fn network_simplex() -> Self {
        SolverConfig {
            backend: BackendKind::NetworkSimplex,
        }
    }

    /// One configuration per available backend, reference first (the shape
    /// the differential tests and benches iterate over).
    pub fn all_backends() -> impl Iterator<Item = SolverConfig> {
        BackendKind::ALL
            .into_iter()
            .map(|backend| SolverConfig { backend })
    }

    /// Parses a backend name as `STRETCH_MINCOST_BACKEND` would; unknown
    /// names **abort with the offending string** and the list of valid
    /// names (a typo used to silently fall back to the primal-dual
    /// reference, running the whole CI matrix on the wrong backend).
    pub fn parse_backend(raw: &str) -> Self {
        match BackendKind::parse(raw) {
            Some(backend) => SolverConfig { backend },
            None => {
                let valid: Vec<&str> = BackendKind::ALL.iter().map(|b| b.name()).collect();
                panic!("STRETCH_MINCOST_BACKEND must be one of {valid:?}, got `{raw}`")
            }
        }
    }

    /// Reads `STRETCH_MINCOST_BACKEND` (uncached); unset falls back to the
    /// primal-dual reference, unrecognised values abort loudly (see
    /// [`Self::parse_backend`]).
    pub fn from_env() -> Self {
        match std::env::var("STRETCH_MINCOST_BACKEND") {
            Err(std::env::VarError::NotPresent) => SolverConfig {
                backend: BackendKind::default(),
            },
            Err(std::env::VarError::NotUnicode(_)) => {
                panic!("STRETCH_MINCOST_BACKEND must be valid unicode, got undecodable bytes")
            }
            Ok(raw) => Self::parse_backend(&raw),
        }
    }

    /// Instantiates the configured min-cost backend.
    pub fn instantiate(&self) -> Box<dyn MinCostBackend + Send> {
        self.backend.instantiate()
    }
}

impl Default for SolverConfig {
    /// The process-wide default: `STRETCH_MINCOST_BACKEND` read **once** on
    /// first use (the schedulers construct solvers on hot paths).
    fn default() -> Self {
        static DEFAULT: OnceLock<SolverConfig> = OnceLock::new();
        *DEFAULT.get_or_init(SolverConfig::from_env)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_constructors_name_their_backends() {
        assert_eq!(SolverConfig::primal_dual().backend.name(), "primal-dual");
        assert_eq!(SolverConfig::network_simplex().backend.name(), "simplex");
        let all: Vec<_> = SolverConfig::all_backends().collect();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0], SolverConfig::primal_dual());
    }

    #[test]
    fn instantiated_backends_match_their_kind() {
        for config in SolverConfig::all_backends() {
            assert_eq!(config.instantiate().name(), config.backend.name());
        }
    }

    #[test]
    fn recognised_backend_names_parse() {
        // Exercising `parse_backend` directly avoids mutating the process
        // environment (this binary runs tests in parallel, and the CI matrix
        // relies on the variable).
        assert_eq!(
            SolverConfig::parse_backend("primal-dual"),
            SolverConfig::primal_dual()
        );
        assert_eq!(
            SolverConfig::parse_backend("simplex"),
            SolverConfig::network_simplex()
        );
    }

    #[test]
    #[should_panic(expected = "got `definitely-not-a-backend`")]
    fn unrecognised_backend_names_abort_with_the_offending_string() {
        SolverConfig::parse_backend("definitely-not-a-backend");
    }
}
