//! Solver configuration threaded through the scheduling layer.
//!
//! Every optimisation-based scheduler bottoms out in two flow solves: the
//! max-flow feasibility probes of the min-stretch search (backend-independent)
//! and the System-(2) min-cost re-allocation, which runs on a pluggable
//! [`MinCostBackend`].  A [`SolverConfig`]
//! names the backend and decides whether solver state may be **carried
//! across events** (simplex basis remapping, residual-flow carry-over); it
//! is carried by the schedulers ([`crate::OnlineScheduler::with_config`],
//! [`crate::OfflineScheduler::with_config`],
//! [`crate::Bender98Scheduler::with_config`]) and by the reusable
//! [`crate::ParametricDeadlineSolver`].
//!
//! # Environment defaults are read once per process
//!
//! The **default** configuration reads three environment variables, and it
//! reads them **exactly once per process** (memoised in a `OnceLock`,
//! because schedulers construct solvers on hot paths):
//!
//! * `STRETCH_MINCOST_BACKEND` — `primal-dual` (the reference, also the
//!   unset default), `simplex` or `monge`; anything else aborts with the
//!   offending string rather than silently falling back.  This is how the CI test
//!   matrix runs the whole suite — schedulers, experiments, property tests —
//!   on either backend without touching call sites.
//! * `STRETCH_WARM_START` — `1`/`true` (the default) enables cross-event
//!   solver memory, `0`/`false` disables it; anything else aborts.  Warm
//!   start is a speed lever only: results are bit-identical either way
//!   (pinned by the differential-oracle suite), so the CI matrix crossing
//!   this knob is a determinism check, not a behaviour switch.
//! * `STRETCH_INCREMENTAL` — `1`/`true` (the default) keeps the parametric
//!   epochal structure alive across events and splices per-event deltas
//!   into it ([`crate::delta`]); `0`/`false` rebuilds it from scratch at
//!   every event; anything else aborts.  Like warm start this is purely a
//!   speed lever: incremental and rebuild solves are bit-identical by
//!   construction (same fill code, persistent buffers), pinned by the
//!   incremental-vs-rebuild differential oracle.
//!
//! Once-per-process means **changing the variables after the first
//! [`SolverConfig::default`] call has no effect** — tests that want to run
//! under several configurations must either pass explicit configs through
//! the `with_config` constructors (the usual way: no environment involved
//! at all) or, for code paths that really consult the process default, use
//! the `#[cfg(test)]`-only `SolverConfig::scoped_default` override, which
//! swaps the default for the duration of a closure on the current thread —
//! no subprocess per matrix cell needed.

use std::sync::OnceLock;
use stretch_flow::{BackendKind, MinCostBackend};

/// Configuration of the flow solvers used by the scheduling layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SolverConfig {
    /// Which engine solves the System-(2) min-cost transportation problems.
    pub backend: BackendKind,
    /// Whether solver state (the simplex spanning-tree basis, the residual
    /// flow of the feasibility probes) may be carried across events.
    ///
    /// Default `true`.  Purely a performance knob: warm-started and cold
    /// solves return bit-identical objectives and allocations (the
    /// warm/cold identity contract, pinned by
    /// `crates/core/tests/backend_diff.rs`).
    pub warm_start: bool,
    /// Whether the solver keeps the parametric epochal structure **alive
    /// across events** and splices per-event deltas into it
    /// ([`crate::delta`]), instead of rebuilding `ParametricStructure` and
    /// the System-(2) transportation network from scratch at every arrival
    /// and completion.
    ///
    /// Default `true` (`STRETCH_INCREMENTAL`).  Like [`Self::warm_start`]
    /// this is purely a performance knob: the incremental path executes the
    /// same fill code over persistent buffers, so incremental and rebuild
    /// solves return bit-identical objectives and allocations (pinned by
    /// the incremental-vs-rebuild leg of
    /// `crates/core/tests/backend_diff.rs`).
    pub incremental: bool,
}

impl SolverConfig {
    /// The primal-dual reference backend (warm start enabled).
    pub fn primal_dual() -> Self {
        SolverConfig {
            backend: BackendKind::PrimalDual,
            warm_start: true,
            incremental: true,
        }
    }

    /// The network-simplex backend (warm start enabled).
    pub fn network_simplex() -> Self {
        SolverConfig {
            backend: BackendKind::NetworkSimplex,
            warm_start: true,
            incremental: true,
        }
    }

    /// The Monge/greedy product-form backend (warm start enabled).
    pub fn monge() -> Self {
        SolverConfig {
            backend: BackendKind::Monge,
            warm_start: true,
            incremental: true,
        }
    }

    /// This configuration with cross-event solver memory switched on or off.
    pub fn with_warm_start(mut self, warm_start: bool) -> Self {
        self.warm_start = warm_start;
        self
    }

    /// This configuration with the incremental (persistent-structure) event
    /// path switched on or off.
    pub fn with_incremental(mut self, incremental: bool) -> Self {
        self.incremental = incremental;
        self
    }

    /// One configuration per available backend, reference first (the shape
    /// the differential tests and benches iterate over).
    pub fn all_backends() -> impl Iterator<Item = SolverConfig> {
        BackendKind::ALL.into_iter().map(|backend| SolverConfig {
            backend,
            warm_start: true,
            incremental: true,
        })
    }

    /// Parses a backend name as `STRETCH_MINCOST_BACKEND` would; unknown
    /// names **abort with the offending string** and the list of valid
    /// names (a typo used to silently fall back to the primal-dual
    /// reference, running the whole CI matrix on the wrong backend).
    pub fn parse_backend(raw: &str) -> Self {
        match BackendKind::parse(raw) {
            Some(backend) => SolverConfig {
                backend,
                warm_start: true,
                incremental: true,
            },
            None => {
                let valid: Vec<&str> = BackendKind::ALL.iter().map(|b| b.name()).collect();
                panic!("STRETCH_MINCOST_BACKEND must be one of {valid:?}, got `{raw}`")
            }
        }
    }

    /// Parses a warm-start switch as `STRETCH_WARM_START` would: exactly
    /// `1`/`true`/`on` (enabled) or `0`/`false`/`off` (disabled),
    /// case-insensitive and whitespace-trimmed; anything else aborts with
    /// the offending string, consistent with the strict-parse policy of
    /// every other `STRETCH_*` knob.
    pub fn parse_warm_start(raw: &str) -> bool {
        match raw.trim().to_ascii_lowercase().as_str() {
            "1" | "true" | "on" => true,
            "0" | "false" | "off" => false,
            _ => panic!("STRETCH_WARM_START must be one of 0/1, true/false or on/off, got `{raw}`"),
        }
    }

    /// Parses an incremental switch as `STRETCH_INCREMENTAL` would: exactly
    /// `1`/`true`/`on` (enabled, the default) or `0`/`false`/`off`
    /// (disabled), case-insensitive and whitespace-trimmed; anything else
    /// aborts with the offending string, consistent with the strict-parse
    /// policy of every other `STRETCH_*` knob.
    pub fn parse_incremental(raw: &str) -> bool {
        match raw.trim().to_ascii_lowercase().as_str() {
            "1" | "true" | "on" => true,
            "0" | "false" | "off" => false,
            _ => {
                panic!("STRETCH_INCREMENTAL must be one of 0/1, true/false or on/off, got `{raw}`")
            }
        }
    }

    /// Reads `STRETCH_MINCOST_BACKEND`, `STRETCH_WARM_START` and
    /// `STRETCH_INCREMENTAL` (**uncached** — callers wanting the memoised
    /// process default use [`SolverConfig::default`]); unset variables fall
    /// back to the primal-dual reference with warm start and incremental
    /// solving on, unrecognised values abort loudly (see
    /// [`Self::parse_backend`], [`Self::parse_warm_start`],
    /// [`Self::parse_incremental`]).
    pub fn from_env() -> Self {
        let backend = match std::env::var("STRETCH_MINCOST_BACKEND") {
            Err(std::env::VarError::NotPresent) => BackendKind::default(),
            Err(std::env::VarError::NotUnicode(_)) => {
                panic!("STRETCH_MINCOST_BACKEND must be valid unicode, got undecodable bytes")
            }
            Ok(raw) => Self::parse_backend(&raw).backend,
        };
        let warm_start = match std::env::var("STRETCH_WARM_START") {
            Err(std::env::VarError::NotPresent) => true,
            Err(std::env::VarError::NotUnicode(_)) => {
                panic!("STRETCH_WARM_START must be valid unicode, got undecodable bytes")
            }
            Ok(raw) => Self::parse_warm_start(&raw),
        };
        let incremental = match std::env::var("STRETCH_INCREMENTAL") {
            Err(std::env::VarError::NotPresent) => true,
            Err(std::env::VarError::NotUnicode(_)) => {
                panic!("STRETCH_INCREMENTAL must be valid unicode, got undecodable bytes")
            }
            Ok(raw) => Self::parse_incremental(&raw),
        };
        SolverConfig {
            backend,
            warm_start,
            incremental,
        }
    }

    /// Parses a positive integer knob value as [`Self::env_u64_nonzero`] would:
    /// whitespace-trimmed decimal, rejecting `0`, overflow and garbage
    /// loudly with the variable name and the offending string — the same
    /// strict-parse policy as every other `STRETCH_*` knob.  Public so the
    /// serve-layer knobs (`STRETCH_SERVE_SEGMENT_RECORDS`,
    /// `STRETCH_SERVE_SNAPSHOT_EVERY`, …) share one parser and one message
    /// shape.
    pub fn parse_env_u64_nonzero(name: &str, raw: &str) -> u64 {
        let trimmed = raw.trim();
        match trimmed.parse::<u64>() {
            Ok(0) => panic!("{name} must be a positive integer, got `{raw}` (zero is not valid)"),
            Ok(v) => v,
            Err(_) => panic!("{name} must be a positive integer that fits in 64 bits, got `{raw}`"),
        }
    }

    /// Reads environment variable `name` as a positive `u64`: unset falls
    /// back to `default`; `0`, overflow, non-numeric and non-unicode values
    /// abort loudly with the offending string (see
    /// [`Self::parse_env_u64_nonzero`]).
    pub fn env_u64_nonzero(name: &str, default: u64) -> u64 {
        match std::env::var(name) {
            Err(std::env::VarError::NotPresent) => default,
            Err(std::env::VarError::NotUnicode(raw)) => {
                panic!("{name} must be valid unicode, got undecodable bytes {raw:?}")
            }
            Ok(raw) => Self::parse_env_u64_nonzero(name, &raw),
        }
    }

    /// Reads environment variable `name` as a presence-only debug flag:
    /// set (to anything, unicode or not) means on.  Presence checks have no
    /// malformed case, but routing them through this helper keeps
    /// `config.rs` the single file that touches the process environment.
    pub fn env_flag(name: &str) -> bool {
        std::env::var_os(name).is_some()
    }

    /// Instantiates the configured min-cost backend (honouring
    /// [`Self::warm_start`]: a cold configuration gets a backend that never
    /// reuses state across solves).
    pub fn instantiate(&self) -> Box<dyn MinCostBackend + Send> {
        self.backend.instantiate_with(self.warm_start)
    }

    /// Runs `f` with `config` installed as the process default **on the
    /// current thread** — the in-process alternative to spawning one
    /// subprocess per cell of the backend × warm-start matrix.
    ///
    /// Test-only by design (`#[cfg(test)]`): production code must never
    /// depend on a mutable default.  Overrides nest; the previous default is
    /// restored when `f` returns or panics.  Integration tests (which see
    /// the crate without `cfg(test)`) should pass explicit configurations
    /// through the `with_config` constructors instead.
    #[cfg(test)]
    pub fn scoped_default<R>(config: SolverConfig, f: impl FnOnce() -> R) -> R {
        struct Guard;
        impl Drop for Guard {
            fn drop(&mut self) {
                test_override::OVERRIDE.with(|stack| {
                    stack.borrow_mut().pop();
                });
            }
        }
        test_override::OVERRIDE.with(|stack| stack.borrow_mut().push(config));
        let _guard = Guard;
        f()
    }
}

#[cfg(test)]
mod test_override {
    use super::SolverConfig;
    use std::cell::RefCell;

    thread_local! {
        /// Stack of scoped default overrides; see [`SolverConfig::scoped_default`].
        pub(super) static OVERRIDE: RefCell<Vec<SolverConfig>> = const { RefCell::new(Vec::new()) };
    }

    /// The innermost scoped override on this thread, if any.
    pub(super) fn current() -> Option<SolverConfig> {
        OVERRIDE.with(|stack| stack.borrow().last().copied())
    }
}

impl Default for SolverConfig {
    /// The process-wide default: `STRETCH_MINCOST_BACKEND` and
    /// `STRETCH_WARM_START` read **once** on first use (the schedulers
    /// construct solvers on hot paths; see the module docs for the
    /// consequences and the test-only escape hatch).
    fn default() -> Self {
        #[cfg(test)]
        if let Some(config) = test_override::current() {
            return config;
        }
        static DEFAULT: OnceLock<SolverConfig> = OnceLock::new();
        *DEFAULT.get_or_init(SolverConfig::from_env)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_constructors_name_their_backends() {
        assert_eq!(SolverConfig::primal_dual().backend.name(), "primal-dual");
        assert_eq!(SolverConfig::network_simplex().backend.name(), "simplex");
        assert_eq!(SolverConfig::monge().backend.name(), "monge");
        let all: Vec<_> = SolverConfig::all_backends().collect();
        assert_eq!(all.len(), 3);
        assert_eq!(all[0], SolverConfig::primal_dual());
        assert!(
            all.iter().all(|c| c.warm_start),
            "warm start is the default"
        );
    }

    #[test]
    fn instantiated_backends_match_their_kind() {
        for config in SolverConfig::all_backends() {
            assert_eq!(config.instantiate().name(), config.backend.name());
            let cold = config.with_warm_start(false);
            assert_eq!(cold.instantiate().name(), config.backend.name());
        }
    }

    #[test]
    fn recognised_backend_names_parse() {
        // Exercising `parse_backend` directly avoids mutating the process
        // environment (this binary runs tests in parallel, and the CI matrix
        // relies on the variable).
        assert_eq!(
            SolverConfig::parse_backend("primal-dual"),
            SolverConfig::primal_dual()
        );
        assert_eq!(
            SolverConfig::parse_backend("simplex"),
            SolverConfig::network_simplex()
        );
        assert_eq!(SolverConfig::parse_backend("monge"), SolverConfig::monge());
    }

    #[test]
    fn backend_abort_message_lists_every_valid_name() {
        // PR 3 convention: malformed STRETCH_MINCOST_BACKEND values abort
        // loudly — and the message must name every parseable backend, so a
        // typo'd CI matrix cell tells the operator the full menu.  This
        // regression-proofs the list against future backend additions:
        // `BackendKind::ALL` drives both the parser and the message.
        let panic = std::panic::catch_unwind(|| SolverConfig::parse_backend("bogus"))
            .expect_err("unknown names must abort");
        let message = panic
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
            .expect("panic payload is a string");
        for kind in BackendKind::ALL {
            assert!(
                message.contains(kind.name()),
                "abort message must list `{}`, got: {message}",
                kind.name()
            );
        }
        assert!(message.contains("`bogus`"), "offending string echoed");
    }

    #[test]
    fn warm_start_switch_parses_strictly() {
        assert!(SolverConfig::parse_warm_start("1"));
        assert!(SolverConfig::parse_warm_start("true"));
        assert!(!SolverConfig::parse_warm_start("0"));
        assert!(!SolverConfig::parse_warm_start(" off "));
    }

    #[test]
    #[should_panic(expected = "got `definitely-not-a-backend`")]
    fn unrecognised_backend_names_abort_with_the_offending_string() {
        SolverConfig::parse_backend("definitely-not-a-backend");
    }

    #[test]
    #[should_panic(expected = "got `2`")]
    fn unrecognised_warm_start_values_abort_with_the_offending_string() {
        SolverConfig::parse_warm_start("2");
    }

    #[test]
    fn incremental_switch_parses_strictly() {
        assert!(SolverConfig::parse_incremental("1"));
        assert!(SolverConfig::parse_incremental("true"));
        assert!(SolverConfig::parse_incremental(" On "));
        assert!(!SolverConfig::parse_incremental("0"));
        assert!(!SolverConfig::parse_incremental(" off "));
    }

    #[test]
    fn incremental_is_on_by_default_and_togglable() {
        assert!(
            SolverConfig::all_backends().all(|c| c.incremental),
            "incremental is the default"
        );
        let cold = SolverConfig::monge().with_incremental(false);
        assert!(!cold.incremental);
        assert_eq!(cold.with_incremental(true), SolverConfig::monge());
    }

    #[test]
    #[should_panic(expected = "STRETCH_INCREMENTAL must be one of 0/1, true/false or on/off")]
    fn unrecognised_incremental_values_abort_with_the_offending_string() {
        SolverConfig::parse_incremental("maybe");
    }

    #[test]
    fn u64_knobs_parse_strictly() {
        // The serve-layer knobs (STRETCH_SERVE_SEGMENT_RECORDS,
        // STRETCH_SERVE_SEGMENT_BYTES, STRETCH_SERVE_SNAPSHOT_EVERY,
        // STRETCH_SERVE_SNAPSHOT_RETAIN) all parse through this helper, so
        // exercising it directly covers them without touching the process
        // environment.
        assert_eq!(
            SolverConfig::parse_env_u64_nonzero("STRETCH_SERVE_SEGMENT_RECORDS", "1024"),
            1024
        );
        assert_eq!(
            SolverConfig::parse_env_u64_nonzero("STRETCH_SERVE_SNAPSHOT_EVERY", " 2 "),
            2,
            "values are whitespace-trimmed"
        );
        assert_eq!(
            SolverConfig::parse_env_u64_nonzero("X", &u64::MAX.to_string()),
            u64::MAX
        );
    }

    #[test]
    #[should_panic(expected = "STRETCH_SERVE_SEGMENT_RECORDS must be a positive integer")]
    fn zero_u64_knob_values_abort_with_the_variable_name() {
        // A zero segment threshold would rotate on every record (or never),
        // so it is rejected rather than reinterpreted.
        SolverConfig::parse_env_u64_nonzero("STRETCH_SERVE_SEGMENT_RECORDS", "0");
    }

    #[test]
    #[should_panic(expected = "got `18446744073709551616`")]
    fn overflowing_u64_knob_values_abort_with_the_offending_string() {
        // One past u64::MAX.
        SolverConfig::parse_env_u64_nonzero(
            "STRETCH_SERVE_SNAPSHOT_RETAIN",
            "18446744073709551616",
        );
    }

    #[test]
    #[should_panic(expected = "got `37 segments`")]
    fn non_numeric_u64_knob_values_abort_with_the_offending_string() {
        SolverConfig::parse_env_u64_nonzero("STRETCH_SERVE_SEGMENT_BYTES", "37 segments");
    }

    #[test]
    fn unset_u64_knob_falls_back_to_the_default() {
        // The variable name is deliberately one no harness sets.
        assert_eq!(
            SolverConfig::env_u64_nonzero("STRETCH_TEST_UNSET_KNOB_7F3A", 42),
            42
        );
    }

    #[test]
    fn scoped_default_overrides_and_restores() {
        let ambient = SolverConfig::default();
        let forced = SolverConfig::network_simplex().with_warm_start(false);
        let seen = SolverConfig::scoped_default(forced, SolverConfig::default);
        assert_eq!(seen, forced, "the override is the default inside");
        // Overrides nest.
        let inner = SolverConfig::scoped_default(forced, || {
            SolverConfig::scoped_default(SolverConfig::primal_dual(), SolverConfig::default)
        });
        assert_eq!(inner, SolverConfig::primal_dual());
        assert_eq!(
            SolverConfig::default(),
            ambient,
            "the ambient default is restored outside"
        );
    }

    #[test]
    fn scoped_default_drives_default_built_solvers() {
        // The point of the override: code that takes no config — here the
        // default-config parametric solver — runs under the forced matrix
        // cell without a subprocess.
        for backend in [SolverConfig::primal_dual(), SolverConfig::network_simplex()] {
            for warm in [false, true] {
                let forced = backend.with_warm_start(warm);
                let seen = SolverConfig::scoped_default(forced, || {
                    crate::ParametricDeadlineSolver::new().config()
                });
                assert_eq!(seen, forced);
            }
        }
    }
}
