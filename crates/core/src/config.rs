//! Solver configuration threaded through the scheduling layer.
//!
//! Every optimisation-based scheduler bottoms out in two flow solves: the
//! max-flow feasibility probes of the min-stretch search (backend-independent)
//! and the System-(2) min-cost re-allocation, which runs on a pluggable
//! [`MinCostBackend`](stretch_flow::MinCostBackend).  A [`SolverConfig`]
//! names the backend; it is carried by the schedulers
//! ([`crate::OnlineScheduler::with_config`],
//! [`crate::OfflineScheduler::with_config`],
//! [`crate::Bender98Scheduler::with_config`]) and by the reusable
//! [`crate::ParametricDeadlineSolver`].
//!
//! The **default** configuration reads the `STRETCH_MINCOST_BACKEND`
//! environment variable once per process (`primal-dual`, the reference, when
//! unset or unrecognised; `simplex` selects the network simplex).  This is
//! how the CI test matrix runs the whole suite — schedulers, experiments,
//! property tests — on either backend without touching call sites.

use std::sync::OnceLock;
use stretch_flow::{BackendKind, MinCostBackend};

/// Configuration of the flow solvers used by the scheduling layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SolverConfig {
    /// Which engine solves the System-(2) min-cost transportation problems.
    pub backend: BackendKind,
}

impl SolverConfig {
    /// The primal-dual reference backend.
    pub fn primal_dual() -> Self {
        SolverConfig {
            backend: BackendKind::PrimalDual,
        }
    }

    /// The network-simplex backend.
    pub fn network_simplex() -> Self {
        SolverConfig {
            backend: BackendKind::NetworkSimplex,
        }
    }

    /// One configuration per available backend, reference first (the shape
    /// the differential tests and benches iterate over).
    pub fn all_backends() -> impl Iterator<Item = SolverConfig> {
        BackendKind::ALL
            .into_iter()
            .map(|backend| SolverConfig { backend })
    }

    /// Reads `STRETCH_MINCOST_BACKEND` (uncached); unset or unrecognised
    /// values fall back to the primal-dual reference.
    pub fn from_env() -> Self {
        let backend = std::env::var("STRETCH_MINCOST_BACKEND")
            .ok()
            .and_then(|v| BackendKind::parse(&v))
            .unwrap_or_default();
        SolverConfig { backend }
    }

    /// Instantiates the configured min-cost backend.
    pub fn instantiate(&self) -> Box<dyn MinCostBackend + Send> {
        self.backend.instantiate()
    }
}

impl Default for SolverConfig {
    /// The process-wide default: `STRETCH_MINCOST_BACKEND` read **once** on
    /// first use (the schedulers construct solvers on hot paths).
    fn default() -> Self {
        static DEFAULT: OnceLock<SolverConfig> = OnceLock::new();
        *DEFAULT.get_or_init(SolverConfig::from_env)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_constructors_name_their_backends() {
        assert_eq!(SolverConfig::primal_dual().backend.name(), "primal-dual");
        assert_eq!(SolverConfig::network_simplex().backend.name(), "simplex");
        let all: Vec<_> = SolverConfig::all_backends().collect();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0], SolverConfig::primal_dual());
    }

    #[test]
    fn instantiated_backends_match_their_kind() {
        for config in SolverConfig::all_backends() {
            assert_eq!(config.instantiate().name(), config.backend.name());
        }
    }

    #[test]
    fn unrecognised_values_fall_back_to_the_reference() {
        // `from_env` composes `parse` with `unwrap_or_default`; asserting on
        // those pieces avoids mutating the process environment (this binary
        // runs tests in parallel, and the CI matrix relies on the variable).
        let parsed = BackendKind::parse("definitely-not-a-backend");
        assert_eq!(parsed, None);
        assert_eq!(parsed.unwrap_or_default(), BackendKind::PrimalDual);
        assert_eq!(
            SolverConfig {
                backend: parsed.unwrap_or_default()
            },
            SolverConfig::primal_dual()
        );
    }
}
