//! The common scheduler interface and its result type.

use stretch_metrics::{JobOutcome, ScheduleMetrics};
use stretch_workload::Instance;

/// Errors a scheduler can report.
#[derive(Clone, Debug, PartialEq)]
pub enum ScheduleError {
    /// The underlying fluid simulation failed (allocation bug).
    Simulation(String),
    /// An internal optimisation problem could not be solved.
    Optimisation(String),
    /// The instance cannot be scheduled by this algorithm (e.g. a job whose
    /// databank is hosted nowhere — normally prevented by `Instance::new`).
    Unschedulable(String),
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::Simulation(msg) => write!(f, "simulation error: {msg}"),
            ScheduleError::Optimisation(msg) => write!(f, "optimisation error: {msg}"),
            ScheduleError::Unschedulable(msg) => write!(f, "unschedulable instance: {msg}"),
        }
    }
}

impl std::error::Error for ScheduleError {}

/// The outcome of running one scheduler on one instance.
#[derive(Clone, Debug)]
pub struct ScheduleResult {
    /// Name of the scheduler that produced this result.
    pub scheduler: String,
    /// Per-job outcomes, in job-id order.
    pub outcomes: Vec<JobOutcome>,
    /// The §3 metrics of the schedule.
    pub metrics: ScheduleMetrics,
}

impl ScheduleResult {
    /// Builds a result from per-job completion times.
    ///
    /// `completions[j]` is the completion time of job `j` of `instance`.  The
    /// stretch denominator is the time the job would take alone on the
    /// *whole* platform (its Lemma-1 reference time), which is the convention
    /// used consistently across every scheduler of this crate.
    pub fn from_completions(
        scheduler: impl Into<String>,
        instance: &Instance,
        completions: &[f64],
    ) -> Self {
        assert_eq!(
            completions.len(),
            instance.num_jobs(),
            "one completion time per job"
        );
        let aggregate = instance.platform.aggregate_speed();
        let outcomes: Vec<JobOutcome> = instance
            .jobs
            .iter()
            .zip(completions)
            .map(|(job, &completion)| {
                JobOutcome::new(
                    job.id,
                    job.release,
                    job.work,
                    job.work / aggregate,
                    completion,
                )
            })
            .collect();
        let metrics = ScheduleMetrics::from_outcomes(&outcomes);
        ScheduleResult {
            scheduler: scheduler.into(),
            outcomes,
            metrics,
        }
    }

    /// Completion time of job `j`.
    pub fn completion(&self, job: usize) -> f64 {
        self.outcomes[job].completion
    }
}

/// A scheduling algorithm for the divisible / restricted-availability model.
pub trait Scheduler {
    /// Short name used in experiment tables ("SRPT", "Online-EDF", …).
    fn name(&self) -> &'static str;

    /// Schedules every job of `instance` and reports the resulting metrics.
    fn schedule(&self, instance: &Instance) -> Result<ScheduleResult, ScheduleError>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use stretch_platform::fixtures::small_platform;
    use stretch_workload::Job;

    #[test]
    fn result_from_completions_computes_consistent_metrics() {
        let platform = small_platform();
        let jobs = vec![Job::new(0, 0.0, 60.0, 0), Job::new(1, 1.0, 120.0, 0)];
        let instance = Instance::new(platform, jobs);
        // Aggregate speed is 60 MB/s, so reference times are 1 s and 2 s.
        let result = ScheduleResult::from_completions("test", &instance, &[2.0, 5.0]);
        assert_eq!(result.scheduler, "test");
        assert_eq!(result.outcomes.len(), 2);
        assert!((result.outcomes[0].stretch() - 2.0).abs() < 1e-9);
        assert!((result.outcomes[1].stretch() - 2.0).abs() < 1e-9);
        assert!((result.metrics.max_stretch - 2.0).abs() < 1e-9);
        assert!((result.metrics.sum_flow - 6.0).abs() < 1e-9);
        assert!((result.completion(1) - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "one completion time per job")]
    fn mismatched_completion_count_rejected() {
        let platform = small_platform();
        let jobs = vec![Job::new(0, 0.0, 60.0, 0)];
        let instance = Instance::new(platform, jobs);
        ScheduleResult::from_completions("test", &instance, &[1.0, 2.0]);
    }
}
