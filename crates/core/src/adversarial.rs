//! The adversarial instances used in the paper's two theorems.
//!
//! * **Theorem 1** (§3.2): any algorithm with a non-trivial competitive ratio
//!   for sum-stretch can be forced to starve a large job by a stream of
//!   unit-size jobs, making its max-stretch arbitrarily worse than optimal.
//!   [`starvation_instance`] builds that stream.
//! * **Theorem 2** (§4.2 and Appendix A): SWRPT is not `(2-ε)`-competitive
//!   for sum-stretch.  [`swrpt_lower_bound_instance`] builds the
//!   doubly-exponential job sequence of the proof.

//!
//! Beyond the hand-built theorem instances, [`online_offline_ratio`] is
//! the *measured* counterpart: the achieved-online vs. offline-clairvoyant
//! max-stretch ratio of an arbitrary platform instance, the score the
//! workload adversary (`stretch-workload`'s `adversary` module) climbs
//! when hunting for hostile streams.

use crate::config::SolverConfig;
use crate::offline::{optimal_max_stretch, OfflineBackend};
use crate::online::{run_online_with, OnlineVariant};
use crate::scheduler::ScheduleError;
use stretch_workload::{Instance, UniprocInstance};

/// The Theorem-1 instance: one job of size `delta` released at time 0,
/// followed by `k` unit-size jobs released at times `0, 1, …, k-1`.
///
/// Sum-stretch-oriented heuristics (SRPT, SPT, SWRPT, …) keep serving the
/// unit jobs and delay the large one indefinitely; max-stretch-oriented
/// algorithms interleave it.  `delta` must be at least 1.
pub fn starvation_instance(delta: f64, k: usize) -> UniprocInstance {
    assert!(delta >= 1.0, "delta is a size ratio, must be >= 1");
    let mut jobs = Vec::with_capacity(k + 1);
    jobs.push((0.0, delta));
    for t in 0..k {
        jobs.push((t as f64, 1.0));
    }
    UniprocInstance::from_times(&jobs)
}

/// Parameters of the Theorem-2 construction, returned for inspection.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SwrptLowerBoundParams {
    /// `α = 1 - ε/3`, the delay each small job suffers under SWRPT.
    pub alpha: f64,
    /// Number of doubly-exponential jobs (`n` in the paper).
    pub n: usize,
    /// Number of sub-unit bridge jobs (`k` in the paper).
    pub k: usize,
    /// Number of trailing unit jobs (`l` in the paper).
    pub l: usize,
}

/// The Theorem-2 / Appendix-A instance showing SWRPT is not
/// `(2-ε)`-competitive for sum-stretch.
///
/// * `epsilon` is the `ε` of the theorem (0 < ε < 1);
/// * `l` is the number of trailing unit jobs — the bound
///   `R ≥ 2 - ε` is reached in the limit `l → ∞`, so larger values get
///   closer to 2.
///
/// Returns the instance together with the derived parameters.
pub fn swrpt_lower_bound_instance(
    epsilon: f64,
    l: usize,
) -> (UniprocInstance, SwrptLowerBoundParams) {
    assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0, 1)");
    assert!(l >= 1);
    let alpha = 1.0 - epsilon / 3.0;

    // n: smallest integer with 1 / 2^(2^n - 1) < ε / (3 (1 + α)), i.e.
    // 2^(2^n - 1) > 3 (1 + α) / ε  (the condition used at the end of the
    // proof in Appendix A).
    let threshold = 3.0 * (1.0 + alpha) / epsilon;
    let mut n = 1usize;
    while (2f64).powf((1u64 << n) as f64 - 1.0) <= threshold {
        n += 1;
        assert!(n < 8, "epsilon too small: job sizes would overflow f64");
    }
    // k = ceil(-log2(-log2 α)).
    let k = (-(-alpha.log2()).log2()).ceil().max(1.0) as usize;

    // Sizes are 2^(2^(n-j)); expressed with f64 powers.
    let size = |exp: f64| (2f64).powf((2f64).powf(exp));

    let mut jobs: Vec<(f64, f64)> = Vec::new();
    // 1. J0 at time 0, size 2^(2^n).
    let p0 = size(n as f64);
    jobs.push((0.0, p0));
    // 2. J1 at time 2^(2^n) - 2^(2^(n-2)), size 2^(2^(n-1)).
    let p1 = size(n as f64 - 1.0);
    let r1 = p0 - size(n as f64 - 2.0);
    jobs.push((r1, p1));
    // 3. J2 at time r1 + p1 - α, size 2^(2^(n-2)).
    let p2 = size(n as f64 - 2.0);
    let r2 = r1 + p1 - alpha;
    jobs.push((r2, p2));
    // 4. J_j for 3 <= j <= n: released back-to-back, sizes 2^(2^(n-j)).
    let mut prev_release = r2;
    let mut prev_size = p2;
    for j in 3..=n {
        let r = prev_release + prev_size;
        let p = size(n as f64 - j as f64);
        jobs.push((r, p));
        prev_release = r;
        prev_size = p;
    }
    // 5. J_{n+j} for 1 <= j <= k: sizes 2^(2^(-j)).
    for j in 1..=k {
        let r = prev_release + prev_size;
        let p = size(-(j as f64));
        jobs.push((r, p));
        prev_release = r;
        prev_size = p;
    }
    // 6. J_{n+k+j} for 1 <= j <= l: unit jobs back-to-back.
    for _ in 1..=l {
        let r = prev_release + prev_size;
        jobs.push((r, 1.0));
        prev_release = r;
        prev_size = 1.0;
    }

    (
        UniprocInstance::from_times(&jobs),
        SwrptLowerBoundParams { alpha, n, k, l },
    )
}

/// Max-stretch of a completion vector against its instance, in the
/// paper's `F_j / W_j` units (`total_cmp` fold — NaN completions sort
/// last and are surfaced rather than masked).
fn max_stretch_of_completions(instance: &Instance, completions: &[f64]) -> f64 {
    instance
        .jobs
        .iter()
        .map(|j| (completions[j.id] - j.release) / j.work)
        .fold(0.0f64, |acc, s| {
            if s.total_cmp(&acc) == std::cmp::Ordering::Greater {
                s
            } else {
                acc
            }
        })
}

/// The achieved-online vs. offline-clairvoyant max-stretch ratio of
/// `instance`: how much worse the per-event online algorithm (under
/// `variant` and the given solver cell) does than the clairvoyant offline
/// optimum.  `1.0` means the online run matched the offline bound; the
/// theorems guarantee streams exist that push it strictly above.
///
/// Determinism contract: the solver cell comes **only** from the passed
/// [`SolverConfig`] (no fresh environment reads — callers that want the
/// process-wide default pass `SolverConfig::default()` explicitly), the
/// offline bound uses the deterministic flow backend, and all ratio
/// comparisons downstream are safe under `total_cmp` (this function never
/// returns NaN for a feasible instance: the offline optimum of a
/// non-empty instance is strictly positive).
pub fn online_offline_ratio(
    instance: &Instance,
    variant: OnlineVariant,
    config: SolverConfig,
) -> Result<f64, ScheduleError> {
    if instance.num_jobs() == 0 {
        return Ok(1.0);
    }
    let completions = run_online_with(instance, variant, config)?;
    let online = max_stretch_of_completions(instance, &completions);
    let offline = optimal_max_stretch(instance, OfflineBackend::Flow)?.stretch;
    Ok(online / offline)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::priority::PriorityRule;
    use crate::uniproc::{max_stretch_of, simulate_priority, sum_stretch_of};

    #[test]
    fn starvation_instance_shape() {
        let inst = starvation_instance(10.0, 5);
        assert_eq!(inst.num_jobs(), 6);
        assert_eq!(inst.jobs[0].release, 0.0);
        assert!((inst.delta() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn srpt_starves_the_large_job_for_max_stretch() {
        // Theorem 1: a sum-stretch-oriented algorithm delays the big job until
        // the unit stream dries out, so its max-stretch grows with k while
        // FCFS keeps it bounded.
        let small = starvation_instance(20.0, 40);
        let large = starvation_instance(20.0, 160);
        for rule in [PriorityRule::Srpt, PriorityRule::Swrpt, PriorityRule::Spt] {
            let ms_small = max_stretch_of(&small, &simulate_priority(&small, rule, None));
            let ms_large = max_stretch_of(&large, &simulate_priority(&large, rule, None));
            assert!(
                ms_large > ms_small * 2.0,
                "{}: {ms_small} -> {ms_large} should grow with k",
                rule.name()
            );
        }
        // FCFS max-stretch does not grow with k (the large job is served
        // first; unit jobs are each delayed by at most delta).
        let fcfs_small =
            max_stretch_of(&small, &simulate_priority(&small, PriorityRule::Fcfs, None));
        let fcfs_large =
            max_stretch_of(&large, &simulate_priority(&large, PriorityRule::Fcfs, None));
        assert!((fcfs_small - fcfs_large).abs() < 1e-9);
    }

    #[test]
    fn srpt_beats_fcfs_on_sum_stretch_for_the_starvation_instance() {
        let inst = starvation_instance(20.0, 80);
        let srpt = sum_stretch_of(&inst, &simulate_priority(&inst, PriorityRule::Srpt, None));
        let fcfs = sum_stretch_of(&inst, &simulate_priority(&inst, PriorityRule::Fcfs, None));
        assert!(srpt < fcfs);
    }

    #[test]
    fn swrpt_lower_bound_parameters_are_sane() {
        let (inst, params) = swrpt_lower_bound_instance(0.5, 10);
        assert!((params.alpha - (1.0 - 0.5 / 3.0)).abs() < 1e-12);
        assert!(params.n >= 2 && params.n < 8);
        assert!(params.k >= 1);
        assert_eq!(inst.num_jobs(), params.n + 1 + params.k + params.l);
        // Sizes decrease along the doubly-exponential prefix.
        for w in inst.jobs.windows(2) {
            assert!(w[0].processing_time >= w[1].processing_time - 1e-9);
        }
    }

    #[test]
    fn swrpt_sum_stretch_approaches_twice_srpt_on_the_lower_bound_instance() {
        // Theorem 2 with ε = 0.5: for l large enough the ratio must exceed
        // 2 - ε = 1.5 (and the optimal sum-stretch is at most SRPT's).
        let (inst, _) = swrpt_lower_bound_instance(0.5, 1500);
        let srpt = sum_stretch_of(&inst, &simulate_priority(&inst, PriorityRule::Srpt, None));
        let swrpt = sum_stretch_of(&inst, &simulate_priority(&inst, PriorityRule::Swrpt, None));
        let ratio = swrpt / srpt;
        assert!(
            ratio > 1.5,
            "SWRPT/SRPT sum-stretch ratio {ratio} should exceed 2 - ε = 1.5"
        );
        // And the ratio must of course stay below the general 2-competitiveness
        // ... of SRPT-like bounds claimed in the theorem's limit.
        assert!(ratio < 2.0 + 1e-9);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn invalid_epsilon_rejected() {
        swrpt_lower_bound_instance(1.5, 10);
    }

    #[test]
    fn online_offline_ratio_is_deterministic_and_at_least_one() {
        let instance = crate::refstream::reference_instance(2, 2, 10, 3);
        for config in SolverConfig::all_backends() {
            let a = online_offline_ratio(&instance, OnlineVariant::Online, config).unwrap();
            let b = online_offline_ratio(&instance, OnlineVariant::Online, config).unwrap();
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{config:?} ratio not reproducible"
            );
            // The online algorithm cannot beat the clairvoyant optimum
            // (up to the offline bisection's resolution).
            assert!(a >= 1.0 - 1e-6, "{config:?} ratio {a} below 1");
            assert!(a.is_finite());
        }
    }

    #[test]
    fn online_offline_ratio_of_an_empty_instance_is_one() {
        let platform = stretch_platform::fixtures::small_platform();
        let instance = stretch_workload::Instance::new(platform, Vec::new());
        let r =
            online_offline_ratio(&instance, OnlineVariant::Online, SolverConfig::monge()).unwrap();
        assert_eq!(r, 1.0);
    }
}
