//! The paper's on-line max-stretch heuristics (§4.3.2).
//!
//! Every time a new job arrives:
//!
//! 1. the running work is preempted;
//! 2. the best max-stretch still achievable *given the work already executed*
//!    is recomputed (the remaining works and the current time enter the
//!    deadline problem — this is the improvement over Bender et al., who look
//!    for the from-scratch optimum);
//! 3. System (2) redistributes the remaining work under those deadlines,
//!    minimising the rational relaxation of the sum-stretch;
//! 4. the interval allocation is serialised into an actual schedule; the
//!    three published variants differ only in this step:
//!    * [`OnlineVariant::Online`] — per site and interval, terminal jobs
//!      first (SWRPT order), then non-terminal jobs;
//!    * [`OnlineVariant::OnlineEdf`] — per site, jobs ordered by the interval
//!      in which their share on that site completes;
//!    * [`OnlineVariant::OnlineEgdf`] — one global list ordered by the
//!      interval in which the whole job completes, dispatched with the §3
//!      rule.
//!
//! The extra variant [`OnlineVariant::NonOptimized`] stops after step 2 and
//! simply runs EDF on the resulting deadlines: it is the baseline of the
//! Figure 3 comparison, showing what the System-(2) refinement buys.

use crate::config::SolverConfig;
use crate::deadline::{DeadlineProblem, PendingJob};
use crate::parametric::ParametricDeadlineSolver;
use crate::plan::{execute_list_order, execute_sequences, site_sequences, PieceOrdering};
use crate::scheduler::{ScheduleError, ScheduleResult, Scheduler};
use crate::sites::SiteView;
use stretch_workload::Instance;

/// The serialisation variants of the on-line heuristic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OnlineVariant {
    /// Terminal-jobs-first serialisation (the paper's `Online`).
    Online,
    /// Per-site EDF-like serialisation (the paper's `Online-EDF`).
    OnlineEdf,
    /// Global list serialisation (the paper's `Online-EGDF`).
    OnlineEgdf,
    /// No System-(2) refinement: EDF on the optimal-stretch deadlines
    /// (the "non-optimized" baseline of Figure 3).
    NonOptimized,
}

impl OnlineVariant {
    /// Display name used in the tables.
    pub fn name(&self) -> &'static str {
        match self {
            OnlineVariant::Online => "Online",
            OnlineVariant::OnlineEdf => "Online-EDF",
            OnlineVariant::OnlineEgdf => "Online-EGDF",
            OnlineVariant::NonOptimized => "Online-NoOpt",
        }
    }
}

/// The on-line LP/flow-based scheduler.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OnlineScheduler {
    variant: OnlineVariant,
    config: SolverConfig,
}

impl OnlineScheduler {
    /// Creates a scheduler for the given variant with the default
    /// [`SolverConfig`].
    pub fn new(variant: OnlineVariant) -> Self {
        Self::with_config(variant, SolverConfig::default())
    }

    /// Creates a scheduler for the given variant on an explicit solver
    /// configuration (min-cost backend selection).
    pub fn with_config(variant: OnlineVariant, config: SolverConfig) -> Self {
        OnlineScheduler { variant, config }
    }

    /// The `Online` variant.
    pub fn online() -> Self {
        Self::new(OnlineVariant::Online)
    }
    /// The `Online-EDF` variant.
    pub fn online_edf() -> Self {
        Self::new(OnlineVariant::OnlineEdf)
    }
    /// The `Online-EGDF` variant.
    pub fn online_egdf() -> Self {
        Self::new(OnlineVariant::OnlineEgdf)
    }
    /// The non-optimized baseline (stops after the max-stretch computation).
    pub fn non_optimized() -> Self {
        Self::new(OnlineVariant::NonOptimized)
    }
}

impl Scheduler for OnlineScheduler {
    fn name(&self) -> &'static str {
        self.variant.name()
    }

    fn schedule(&self, instance: &Instance) -> Result<ScheduleResult, ScheduleError> {
        let completions = run_online_with(instance, self.variant, self.config)?;
        Ok(ScheduleResult::from_completions(
            self.name(),
            instance,
            &completions,
        ))
    }
}

/// Runs the on-line heuristic and returns per-job completion times.
pub fn run_online(instance: &Instance, variant: OnlineVariant) -> Result<Vec<f64>, ScheduleError> {
    run_online_with(instance, variant, SolverConfig::default())
}

/// [`run_online`] on an explicit solver configuration.
pub fn run_online_with(
    instance: &Instance,
    variant: OnlineVariant,
    config: SolverConfig,
) -> Result<Vec<f64>, ScheduleError> {
    let n = instance.num_jobs();
    let sites = SiteView::of(instance);
    let mut remaining: Vec<f64> = instance.jobs.iter().map(|j| j.work).collect();
    let mut completions = vec![f64::NAN; n];
    if n == 0 {
        return Ok(completions);
    }
    // One parametric engine for the whole run: every per-event optimisation
    // (the min-stretch search and the System-(2) re-allocation) reuses its
    // scratch buffers — and the configured min-cost backend, which may carry
    // a warm-startable basis — instead of reallocating them at each arrival.
    let mut solver = ParametricDeadlineSolver::with_config(config);

    // Distinct release dates = the decision points of the on-line algorithm.
    let mut events: Vec<f64> = instance.jobs.iter().map(|j| j.release).collect();
    events.sort_by(|a, b| a.total_cmp(b));
    events.dedup_by(|a, b| (*a - *b).abs() <= 1e-12);

    for (e, &now) in events.iter().enumerate() {
        let horizon = events.get(e + 1).copied().unwrap_or(f64::INFINITY);
        // Pending jobs: released, not completed.
        let pending: Vec<PendingJob> = instance
            .jobs
            .iter()
            .filter(|j| j.release <= now + 1e-12 && remaining[j.id] > 1e-9)
            .map(|j| PendingJob {
                job_id: j.id,
                release: j.release,
                ready: now,
                work: j.work,
                remaining: remaining[j.id],
                databank: j.databank,
            })
            .collect();
        if pending.is_empty() {
            continue;
        }
        let problem = DeadlineProblem::new(pending, sites.clone(), now);

        // Step 2: best achievable max-stretch given the decisions already made.
        let best = solver.min_feasible_stretch(&problem).ok_or_else(|| {
            ScheduleError::Unschedulable("no finite max-stretch achievable on-line".into())
        })?;
        // Slack above the bisection answer so that the allocation step (which
        // uses tighter flow tolerances) is always feasible.
        let slack = crate::deadline::certified_slack(best);

        // Steps 3-4: allocate and serialise according to the variant.
        let execution = match variant {
            OnlineVariant::Online | OnlineVariant::OnlineEdf => {
                let plan = solver.system2_allocation(&problem, slack).ok_or_else(|| {
                    ScheduleError::Optimisation(
                        "System (2) infeasible at the optimal max-stretch".into(),
                    )
                })?;
                let ordering = if variant == OnlineVariant::Online {
                    PieceOrdering::Online
                } else {
                    PieceOrdering::OnlineEdf
                };
                let sequences = site_sequences(&problem, &plan, ordering);
                execute_sequences(&problem, &sequences, now, horizon)
            }
            OnlineVariant::OnlineEgdf => {
                let plan = solver.system2_allocation(&problem, slack).ok_or_else(|| {
                    ScheduleError::Optimisation(
                        "System (2) infeasible at the optimal max-stretch".into(),
                    )
                })?;
                // Global order: interval in which the job's total work
                // completes, ties broken by SWRPT.  The completion intervals
                // are indexed once so the comparator is O(1).
                let index = plan.index(problem.jobs.len(), sites.len());
                let mut order: Vec<usize> = (0..problem.jobs.len()).collect();
                order.sort_by(|&a, &b| {
                    let ia = index.completion_interval(a).unwrap_or(usize::MAX);
                    let ib = index.completion_interval(b).unwrap_or(usize::MAX);
                    ia.cmp(&ib)
                        .then_with(|| {
                            let ka = problem.jobs[a].remaining * problem.jobs[a].work;
                            let kb = problem.jobs[b].remaining * problem.jobs[b].work;
                            ka.total_cmp(&kb)
                        })
                        .then_with(|| a.cmp(&b))
                });
                execute_list_order(&problem, &order, &sites, now, horizon)
            }
            OnlineVariant::NonOptimized => {
                // Stop after step 2: keep the raw feasibility allocation that
                // certifies the optimal max-stretch, without re-optimising how
                // early each job finishes.  This is the behaviour the paper
                // criticises ("all jobs scheduled so that their stretch is
                // equal to the objective") and the baseline of Figure 3.
                let plan = solver
                    .feasibility_allocation(&problem, slack)
                    .ok_or_else(|| {
                        ScheduleError::Optimisation(
                            "feasibility allocation unavailable at the optimal max-stretch".into(),
                        )
                    })?;
                let sequences = site_sequences(&problem, &plan, PieceOrdering::OnlineEdf);
                execute_sequences(&problem, &sequences, now, horizon)
            }
        };

        // Bookkeeping: subtract executed work, record completions.
        for (pending_idx, job) in problem.jobs.iter().enumerate() {
            remaining[job.job_id] =
                (remaining[job.job_id] - execution.executed[pending_idx]).max(0.0);
            if let Some(&c) = execution.completions.get(&pending_idx) {
                remaining[job.job_id] = 0.0;
                completions[job.job_id] = c;
            }
        }
    }

    if completions.iter().any(|c| c.is_nan()) {
        return Err(ScheduleError::Simulation(
            "some job never completed under the on-line heuristic".into(),
        ));
    }
    Ok(completions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list::ListScheduler;
    use crate::offline::{optimal_max_stretch, OfflineBackend};
    use stretch_platform::fixtures::small_platform;
    use stretch_workload::Job;

    fn instance(jobs: Vec<Job>) -> Instance {
        Instance::new(small_platform(), jobs)
    }

    fn mixed_instance() -> Instance {
        instance(vec![
            Job::new(0, 0.0, 300.0, 0),
            Job::new(1, 1.0, 60.0, 1),
            Job::new(2, 2.5, 120.0, 0),
            Job::new(3, 4.0, 30.0, 1),
            Job::new(4, 6.0, 90.0, 0),
        ])
    }

    #[test]
    fn single_job_completes_at_platform_speed() {
        let inst = instance(vec![Job::new(0, 0.0, 120.0, 0)]);
        for variant in [
            OnlineVariant::Online,
            OnlineVariant::OnlineEdf,
            OnlineVariant::OnlineEgdf,
            OnlineVariant::NonOptimized,
        ] {
            let r = OnlineScheduler::new(variant).schedule(&inst).unwrap();
            assert!(
                (r.completion(0) - 2.0).abs() < 1e-3,
                "{}: completion {}",
                variant.name(),
                r.completion(0)
            );
        }
    }

    #[test]
    fn all_variants_complete_every_job_and_respect_releases() {
        let inst = mixed_instance();
        for variant in [
            OnlineVariant::Online,
            OnlineVariant::OnlineEdf,
            OnlineVariant::OnlineEgdf,
            OnlineVariant::NonOptimized,
        ] {
            let r = OnlineScheduler::new(variant).schedule(&inst).unwrap();
            assert_eq!(r.outcomes.len(), 5, "{}", variant.name());
            for o in &r.outcomes {
                assert!(o.completion >= o.release - 1e-9, "{}", variant.name());
            }
        }
    }

    #[test]
    fn online_max_stretch_is_close_to_the_offline_optimum() {
        // Table 1: Online and Online-EDF are within a fraction of a percent of
        // the off-line optimum on average; on this small instance we allow a
        // loose factor but verify they are not wildly off.
        let inst = mixed_instance();
        let opt = optimal_max_stretch(&inst, OfflineBackend::Flow).unwrap();
        let aggregate = inst.platform.aggregate_speed();
        for scheduler in [OnlineScheduler::online(), OnlineScheduler::online_edf()] {
            let r = scheduler.schedule(&inst).unwrap();
            let achieved = r.metrics.max_stretch / aggregate;
            assert!(
                achieved <= opt.stretch * 1.6 + 1e-9,
                "{}: achieved {achieved} vs optimal {}",
                scheduler.name(),
                opt.stretch
            );
            // And of course never better than the optimum.
            assert!(achieved >= opt.stretch * (1.0 - 1e-3));
        }
    }

    #[test]
    fn non_optimized_variant_still_achieves_near_optimal_max_stretch() {
        // Figure 3(a): both the optimized and the non-optimized versions stay
        // close to the optimal max-stretch; only the sum-stretch differs (the
        // average gain of Figure 3(b) is checked in the experiments crate,
        // where it is measured over many random instances as in the paper).
        let inst = mixed_instance();
        let opt = optimal_max_stretch(&inst, OfflineBackend::Flow).unwrap();
        let aggregate = inst.platform.aggregate_speed();
        let refined = OnlineScheduler::online().schedule(&inst).unwrap();
        let baseline = OnlineScheduler::non_optimized().schedule(&inst).unwrap();
        for r in [&refined, &baseline] {
            let achieved = r.metrics.max_stretch / aggregate;
            assert!(
                achieved <= opt.stretch * 1.6 + 1e-9,
                "{}: achieved {achieved} vs optimal {}",
                r.scheduler,
                opt.stretch
            );
        }
    }

    #[test]
    fn egdf_tracks_good_sum_stretch() {
        // Table 1: Online-EGDF trades a bit of max-stretch for sum-stretch
        // close to SWRPT's.
        let inst = mixed_instance();
        let egdf = OnlineScheduler::online_egdf().schedule(&inst).unwrap();
        let swrpt = ListScheduler::swrpt().schedule(&inst).unwrap();
        assert!(egdf.metrics.sum_stretch <= swrpt.metrics.sum_stretch * 1.25);
    }

    #[test]
    fn empty_instance_is_rejected_upstream() {
        // Instance::new with zero jobs is legal; the scheduler returns no
        // completions and ScheduleResult::from_completions would panic on the
        // empty metric set, so run_online is exercised directly.
        let inst = instance(vec![Job::new(0, 0.0, 10.0, 0)]);
        let completions = run_online(&inst, OnlineVariant::Online).unwrap();
        assert_eq!(completions.len(), 1);
    }
}
