//! Turning an interval allocation (System (1)/(2) output) into an executable
//! schedule, and executing it for a while.
//!
//! The linear programs only say *how much* of each job runs on each site
//! within each epochal interval; §4.3.2 describes three ways of serialising
//! those fractions into an actual schedule (the `Online`, `Online-EDF` and
//! `Online-EGDF` variants).  This module implements the serialisations and a
//! small site-level executor able to stop at a horizon (the next release
//! date), reporting how much of every job was executed and which jobs
//! completed — exactly what the on-line schedulers need between two arrivals.

use crate::deadline::{AllocationPlan, DeadlineProblem};
use crate::sites::SiteView;
use std::collections::BTreeMap;

/// How per-site pieces are ordered before sequential execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PieceOrdering {
    /// The paper's `Online` variant: within each interval, *terminal* jobs
    /// (jobs whose share on this site completes in this interval) run first,
    /// in SWRPT order; non-terminal jobs follow.
    Online,
    /// The paper's `Online-EDF` variant: on each site, jobs run in the order
    /// of the interval in which their share on that site completes, ties
    /// broken by SWRPT.
    OnlineEdf,
}

/// The result of executing (part of) a plan.
#[derive(Clone, Debug, Default)]
pub struct PlanExecution {
    /// Work executed for each pending-job index (same indexing as the
    /// [`DeadlineProblem`] the plan was built from).
    pub executed: Vec<f64>,
    /// Completion time of the pending jobs that finished before the horizon.
    pub completions: BTreeMap<usize, f64>,
}

/// Builds, for every site, the ordered list of `(job_index, work)` chunks to
/// execute sequentially.
pub fn site_sequences(
    problem: &DeadlineProblem,
    plan: &AllocationPlan,
    ordering: PieceOrdering,
) -> Vec<Vec<(usize, f64)>> {
    let num_sites = problem.sites.len();
    let swrpt_key =
        |job_index: usize| problem.jobs[job_index].remaining * problem.jobs[job_index].work;
    // Index the plan once: the sort comparators below would otherwise scan
    // every piece per comparison (O(pieces · n log n) per serialisation).
    let index = plan.index(problem.jobs.len(), num_sites);
    let mut sequences = vec![Vec::new(); num_sites];

    for (site, sequence) in sequences.iter_mut().enumerate() {
        match ordering {
            PieceOrdering::Online => {
                // Gather this site's pieces and sort them by
                // (interval, terminal-first, SWRPT).
                let mut pieces: Vec<(usize, usize, f64)> = plan
                    .pieces
                    .iter()
                    .filter(|p| p.site == site && p.work > 1e-12)
                    .map(|p| (p.interval, p.job_index, p.work))
                    .collect();
                pieces.sort_by(|a, b| {
                    let terminal_a = index.completion_interval_on_site(a.1, site) == Some(a.0);
                    let terminal_b = index.completion_interval_on_site(b.1, site) == Some(b.0);
                    a.0.cmp(&b.0)
                        .then_with(|| terminal_b.cmp(&terminal_a)) // terminal first
                        .then_with(|| swrpt_key(a.1).total_cmp(&swrpt_key(b.1)))
                        // Final deterministic tie-break on the job index
                        // (jobs of the same databank have identical sizes,
                        // so SWRPT ties are common).
                        .then_with(|| a.1.cmp(&b.1))
                });
                *sequence = pieces.into_iter().map(|(_, j, w)| (j, w)).collect();
            }
            PieceOrdering::OnlineEdf => {
                // Aggregate the site's work per job (dense accumulator, job
                // order — deterministic by construction), then order jobs by
                // the interval in which their share on this site completes.
                let mut per_job = vec![0.0f64; problem.jobs.len()];
                for p in plan.pieces.iter().filter(|p| p.site == site) {
                    per_job[p.job_index] += p.work;
                }
                let mut jobs: Vec<(usize, f64)> = per_job
                    .into_iter()
                    .enumerate()
                    .filter(|&(_, w)| w > 1e-12)
                    .collect();
                jobs.sort_by(|a, b| {
                    let ia = index.completion_interval_on_site(a.0, site).unwrap_or(0);
                    let ib = index.completion_interval_on_site(b.0, site).unwrap_or(0);
                    ia.cmp(&ib)
                        .then_with(|| swrpt_key(a.0).total_cmp(&swrpt_key(b.0)))
                        // Final deterministic tie-break on the job index.
                        .then_with(|| a.0.cmp(&b.0))
                });
                *sequence = jobs;
            }
        }
    }
    sequences
}

/// Executes per-site sequential chunk lists from `start` until `horizon`.
///
/// Each site processes its chunks back to back at its aggregate speed; a job
/// completes when the last of its chunks (across all sites) finishes.  Chunks
/// interrupted by the horizon contribute partial work.
pub fn execute_sequences(
    problem: &DeadlineProblem,
    sequences: &[Vec<(usize, f64)>],
    start: f64,
    horizon: f64,
) -> PlanExecution {
    let n = problem.jobs.len();
    let mut executed = vec![0.0; n];
    let mut last_finish: Vec<f64> = vec![start; n];
    let mut truncated = vec![false; n];

    for (site_idx, seq) in sequences.iter().enumerate() {
        let speed = problem.sites.sites[site_idx].speed;
        let mut clock = start;
        for &(job_index, work) in seq {
            // Never start a chunk before its job is released (relevant for the
            // off-line serialisation, where future jobs are part of the plan);
            // the plan assigns the chunk to an interval starting at or after
            // the ready time, so waiting here cannot push any later chunk past
            // its own interval.
            clock = clock.max(problem.jobs[job_index].ready.max(problem.now));
            if clock >= horizon - 1e-12 {
                truncated[job_index] = true;
                continue;
            }
            let duration = work / speed;
            let end = clock + duration;
            if end <= horizon + 1e-12 {
                executed[job_index] += work;
                last_finish[job_index] = last_finish[job_index].max(end);
                clock = end;
            } else {
                let done = (horizon - clock) * speed;
                executed[job_index] += done;
                truncated[job_index] = true;
                clock = horizon;
            }
        }
    }

    let mut completions = BTreeMap::new();
    for (j, job) in problem.jobs.iter().enumerate() {
        // Relative completion tolerance: the flow solver ships the demand up
        // to a relative rounding error, which on multi-hundred-MB jobs can
        // exceed any fixed absolute epsilon.
        let tolerance = 1e-6_f64.max(job.remaining * 1e-6);
        if !truncated[j] && executed[j] >= job.remaining - tolerance {
            completions.insert(j, last_finish[j]);
        }
    }
    PlanExecution {
        executed,
        completions,
    }
}

/// Executes the §3 list-scheduling rule at site granularity for a *fixed*
/// priority order of the pending jobs, from `start` until `horizon`.
///
/// `order` lists pending-job indices from highest to lowest priority.  At any
/// instant the highest-priority unfinished job runs on every eligible site
/// not already grabbed by a higher-priority job; allocations are recomputed
/// whenever a job completes.  This is the executor used by `Online-EGDF`,
/// by the non-optimized on-line variant (EDF order) and by Bender98.
pub fn execute_list_order(
    problem: &DeadlineProblem,
    order: &[usize],
    sites: &SiteView,
    start: f64,
    horizon: f64,
) -> PlanExecution {
    let n = problem.jobs.len();
    let mut remaining: Vec<f64> = problem.jobs.iter().map(|j| j.remaining).collect();
    let mut executed = vec![0.0; n];
    let mut completions = BTreeMap::new();
    let mut now = start;

    loop {
        let unfinished: Vec<usize> = order
            .iter()
            .copied()
            .filter(|&j| remaining[j] > 1e-9)
            .collect();
        if unfinished.is_empty() || now >= horizon - 1e-12 {
            break;
        }
        // Assign sites greedily in priority order.
        let mut site_taken = vec![false; sites.len()];
        let mut rates = vec![0.0; n];
        for &j in &unfinished {
            for (s, site) in sites.sites.iter().enumerate() {
                if !site_taken[s] && site.hosts(problem.jobs[j].databank) {
                    site_taken[s] = true;
                    rates[j] += site.speed;
                }
            }
        }
        // Next event: first completion under these rates, or the horizon.
        let mut next = horizon;
        for &j in &unfinished {
            if rates[j] > 1e-12 {
                next = next.min(now + remaining[j] / rates[j]);
            }
        }
        if !next.is_finite() || next <= now + 1e-12 {
            // No progress possible (e.g. no eligible site); avoid spinning.
            if next <= now + 1e-12 && next < horizon {
                next = now + 1e-9;
            } else {
                break;
            }
        }
        let dt = next - now;
        for &j in &unfinished {
            if rates[j] > 1e-12 {
                let done = (rates[j] * dt).min(remaining[j]);
                remaining[j] -= done;
                executed[j] += done;
                if remaining[j] <= 1e-9 {
                    remaining[j] = 0.0;
                    completions.insert(j, next);
                }
            }
        }
        now = next;
    }

    PlanExecution {
        executed,
        completions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deadline::PendingJob;
    use crate::sites::{Site, SiteView};

    fn sites() -> SiteView {
        SiteView {
            sites: vec![
                Site {
                    cluster: 0,
                    speed: 1.0,
                    hosted_databanks: vec![0],
                },
                Site {
                    cluster: 1,
                    speed: 2.0,
                    hosted_databanks: vec![0, 1],
                },
            ],
        }
    }

    fn job(id: usize, release: f64, work: f64, databank: usize) -> PendingJob {
        PendingJob {
            job_id: id,
            release,
            ready: release,
            work,
            remaining: work,
            databank,
        }
    }

    fn problem(jobs: Vec<PendingJob>) -> DeadlineProblem {
        DeadlineProblem::new(jobs, sites(), 0.0)
    }

    #[test]
    fn sequences_cover_all_planned_work() {
        let p = problem(vec![job(0, 0.0, 3.0, 0), job(1, 0.0, 2.0, 1)]);
        let f = p.min_feasible_stretch().unwrap() * 1.01;
        let plan = p.system2_allocation(f).unwrap();
        for ordering in [PieceOrdering::Online, PieceOrdering::OnlineEdf] {
            let seqs = site_sequences(&p, &plan, ordering);
            let total: f64 = seqs.iter().flatten().map(|&(_, w)| w).sum();
            assert!((total - 5.0).abs() < 1e-5, "{ordering:?}: total {total}");
            // Databank 1 chunks only appear on site 1.
            for &(j, _) in &seqs[0] {
                assert_eq!(p.jobs[j].databank, 0);
            }
        }
    }

    #[test]
    fn execute_sequences_to_completion() {
        let p = problem(vec![job(0, 0.0, 2.0, 0), job(1, 0.0, 4.0, 1)]);
        let f = p.min_feasible_stretch().unwrap() * 1.01;
        let plan = p.system2_allocation(f).unwrap();
        let seqs = site_sequences(&p, &plan, PieceOrdering::OnlineEdf);
        let exec = execute_sequences(&p, &seqs, 0.0, f64::INFINITY);
        assert!((exec.executed[0] - 2.0).abs() < 1e-5);
        assert!((exec.executed[1] - 4.0).abs() < 1e-5);
        assert_eq!(exec.completions.len(), 2);
        // Completions never exceed the max-stretch deadlines.
        for (j, &c) in &exec.completions {
            assert!(c <= p.jobs[*j].deadline(f) + 1e-6);
        }
    }

    #[test]
    fn execute_sequences_respects_the_horizon() {
        let p = problem(vec![job(0, 0.0, 6.0, 0)]);
        let f = p.min_feasible_stretch().unwrap() * 1.01;
        let plan = p.system2_allocation(f).unwrap();
        let seqs = site_sequences(&p, &plan, PieceOrdering::Online);
        let exec = execute_sequences(&p, &seqs, 0.0, 1.0);
        // Both sites together run at 3 MB/s, so at most 3 units are executed
        // by t = 1 and the job is not completed.
        assert!(exec.executed[0] <= 3.0 + 1e-6);
        assert!(exec.completions.is_empty());
    }

    #[test]
    fn list_order_executor_serves_priorities_first() {
        let p = problem(vec![job(0, 0.0, 6.0, 0), job(1, 0.0, 2.0, 0)]);
        // Priority to job 1.
        let exec = execute_list_order(&p, &[1, 0], &sites(), 0.0, f64::INFINITY);
        // Job 1 takes both sites (3 MB/s): completes at 2/3.
        let c1 = exec.completions[&1];
        assert!((c1 - 2.0 / 3.0).abs() < 1e-6);
        // Job 0 then takes everything; total work 8 at 3 MB/s => makespan 8/3.
        let c0 = exec.completions[&0];
        assert!((c0 - 8.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn list_order_executor_respects_restricted_availability() {
        let p = problem(vec![job(0, 0.0, 4.0, 1), job(1, 0.0, 4.0, 0)]);
        // Job 0 first, but it can only use site 1; job 1 gets site 0.
        let exec = execute_list_order(&p, &[0, 1], &sites(), 0.0, f64::INFINITY);
        assert!((exec.completions[&0] - 2.0).abs() < 1e-6);
        // Job 1: 1 MB/s for 2 s, then 3 MB/s for the remaining 2 MB.
        assert!((exec.completions[&1] - (2.0 + 2.0 / 3.0)).abs() < 1e-6);
    }

    #[test]
    fn list_order_executor_stops_at_horizon() {
        let p = problem(vec![job(0, 0.0, 30.0, 0)]);
        let exec = execute_list_order(&p, &[0], &sites(), 0.0, 2.0);
        assert!((exec.executed[0] - 6.0).abs() < 1e-6);
        assert!(exec.completions.is_empty());
    }
}
