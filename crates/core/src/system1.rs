//! The paper's System (1) as an explicit linear program.
//!
//! Within one milestone interval `[F₁, F₂]` the relative order of release
//! dates and deadlines is constant, so interval durations are affine in `F`
//! and minimising `F` subject to deadline feasibility is the LP of §4.3.1.
//! The production path of the solver uses the flow back-end of
//! [`crate::deadline`]; this module exists to mirror the paper exactly and to
//! cross-validate the two back-ends (they must agree on the optimal
//! max-stretch).

use crate::deadline::DeadlineProblem;
use stretch_lp::problem::{Problem, Relation, Sense};
use stretch_lp::LinExpr;

/// An epochal time that is either a constant (ready time) or an affine
/// function of the objective (`deadline = release + F · work`).
#[derive(Clone, Copy, Debug, PartialEq)]
struct AffineTime {
    constant: f64,
    slope: f64,
}

impl AffineTime {
    fn constant(c: f64) -> Self {
        AffineTime {
            constant: c,
            slope: 0.0,
        }
    }
    fn eval(&self, f: f64) -> f64 {
        self.constant + self.slope * f
    }
}

/// Solves `min F` over `[f_lo, f_hi]` subject to System (1), assuming the
/// epochal-time ordering does not change on that interval (i.e. `[f_lo,
/// f_hi]` contains no milestone in its interior).
///
/// Returns `None` when the system is infeasible on the whole interval.
pub fn solve_system1_interval(problem: &DeadlineProblem, f_lo: f64, f_hi: f64) -> Option<f64> {
    assert!(f_lo <= f_hi, "empty objective interval");
    if problem.is_trivial() {
        return Some(f_lo);
    }
    let f_mid = 0.5 * (f_lo + f_hi);

    // Epochal times as affine functions of F, ordered by their value at the
    // midpoint of the interval (the ordering is constant on the interval).
    let mut times: Vec<AffineTime> = vec![AffineTime::constant(problem.now)];
    for j in &problem.jobs {
        times.push(AffineTime::constant(j.ready.max(problem.now)));
        times.push(AffineTime {
            constant: j.release,
            slope: j.work,
        });
    }
    times.sort_by(|a, b| a.eval(f_mid).total_cmp(&b.eval(f_mid)));
    times.dedup_by(|a, b| (a.eval(f_mid) - b.eval(f_mid)).abs() <= 1e-9);
    // Drop epochal times that fall before `now` at the midpoint (stale
    // deadlines of late jobs); clamping them to `now` keeps durations
    // nonnegative on the interval of interest.
    let times: Vec<AffineTime> = times
        .into_iter()
        .filter(|t| t.eval(f_mid) >= problem.now - 1e-9)
        .collect();
    if times.len() < 2 {
        return None;
    }
    let num_intervals = times.len() - 1;

    let mut lp = Problem::new(Sense::Minimize);
    let f_var = lp.add_var("F");
    lp.set_objective_coeff(f_var, 1.0);
    lp.add_lower_bound(f_var, f_lo);
    lp.add_upper_bound(f_var, f_hi);

    // alpha[(site, job, interval)] -> variable id
    let mut alpha = std::collections::BTreeMap::new();
    for (j, job) in problem.jobs.iter().enumerate() {
        let deadline_mid = job.deadline(f_mid);
        for (s, site) in problem.sites.sites.iter().enumerate() {
            if !site.hosts(job.databank) {
                continue;
            }
            for t in 0..num_intervals {
                let start_mid = times[t].eval(f_mid);
                let end_mid = times[t + 1].eval(f_mid);
                // Constraints (1b)/(1c): the job may only use intervals fully
                // inside its [ready, deadline] window.
                if job.ready.max(problem.now) <= start_mid + 1e-9 && deadline_mid >= end_mid - 1e-9
                {
                    let v = lp.add_var(format!("a_{s}_{j}_{t}"));
                    alpha.insert((s, j, t), v);
                }
            }
        }
    }

    // Constraint (1d): per site and interval, allocated work fits in the
    // interval: Σ_j α ≤ speed · duration(F), duration affine in F.
    for (s, site) in problem.sites.sites.iter().enumerate() {
        for t in 0..num_intervals {
            let duration_const = times[t + 1].constant - times[t].constant;
            let duration_slope = times[t + 1].slope - times[t].slope;
            let mut expr = LinExpr::new();
            let mut any = false;
            for (j, _) in problem.jobs.iter().enumerate() {
                if let Some(&v) = alpha.get(&(s, j, t)) {
                    expr.add_term(v, 1.0);
                    any = true;
                }
            }
            if !any {
                continue;
            }
            expr.add_term(f_var, -site.speed * duration_slope);
            lp.add_constraint(expr, Relation::Le, site.speed * duration_const);
        }
    }

    // Constraint (1e): every job's remaining work is fully allocated.
    for (j, job) in problem.jobs.iter().enumerate() {
        let mut expr = LinExpr::new();
        let mut any = false;
        for s in 0..problem.sites.len() {
            for t in 0..num_intervals {
                if let Some(&v) = alpha.get(&(s, j, t)) {
                    expr.add_term(v, 1.0);
                    any = true;
                }
            }
        }
        if !any {
            return None;
        }
        lp.add_constraint(expr, Relation::Eq, job.remaining);
    }

    lp.solve().ok().map(|sol| sol.value(f_var))
}

/// The paper's full §4.3.1 algorithm with the LP back-end: enumerate the
/// milestones, binary-search them for the first feasible one (using the flow
/// feasibility test, which is cheaper), then solve System (1) exactly on the
/// final milestone interval.
pub fn optimal_stretch_lp(problem: &DeadlineProblem) -> Option<f64> {
    if problem.is_trivial() {
        return Some(0.0);
    }
    let lower = problem.stretch_lower_bound();
    if !lower.is_finite() {
        return None;
    }
    // Bracket the optimum: grow an upper bound until feasible.
    let mut upper = lower.max(1e-6) * 2.0;
    let mut tries = 0;
    while !problem.feasible(upper) {
        upper *= 2.0;
        tries += 1;
        if tries > 80 {
            return None;
        }
    }
    // Candidate breakpoints: milestones inside the bracket.
    let mut breakpoints: Vec<f64> = problem
        .milestones()
        .into_iter()
        .filter(|&m| m > lower && m < upper)
        .collect();
    breakpoints.push(upper);
    // Binary search for the first feasible breakpoint.
    let mut lo = lower; // possibly infeasible
    let mut lo_idx: isize = -1;
    let mut hi_idx = breakpoints.len() - 1; // feasible by construction
    if problem.feasible(breakpoints[0]) {
        hi_idx = 0;
    } else {
        let mut lo_search = 0usize; // infeasible
        while hi_idx - lo_search > 1 {
            let mid = (lo_search + hi_idx) / 2;
            if problem.feasible(breakpoints[mid]) {
                hi_idx = mid;
            } else {
                lo_search = mid;
            }
        }
        lo_idx = lo_search as isize;
    }
    if lo_idx >= 0 {
        lo = breakpoints[lo_idx as usize];
    }
    let hi = breakpoints[hi_idx];
    solve_system1_interval(problem, lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deadline::PendingJob;
    use crate::sites::{Site, SiteView};

    fn sites() -> SiteView {
        SiteView {
            sites: vec![
                Site {
                    cluster: 0,
                    speed: 1.0,
                    hosted_databanks: vec![0],
                },
                Site {
                    cluster: 1,
                    speed: 2.0,
                    hosted_databanks: vec![0, 1],
                },
            ],
        }
    }

    fn job(id: usize, release: f64, work: f64, databank: usize) -> PendingJob {
        PendingJob {
            job_id: id,
            release,
            ready: release,
            work,
            remaining: work,
            databank,
        }
    }

    #[test]
    fn lp_matches_flow_bisection_on_small_instances() {
        let cases: Vec<Vec<PendingJob>> = vec![
            vec![job(0, 0.0, 2.0, 0)],
            vec![job(0, 0.0, 1.0, 0), job(1, 0.0, 1.0, 0)],
            vec![
                job(0, 0.0, 3.0, 0),
                job(1, 1.0, 1.0, 1),
                job(2, 2.0, 2.0, 0),
            ],
            vec![
                job(0, 0.0, 4.0, 1),
                job(1, 0.5, 2.0, 0),
                job(2, 1.0, 1.0, 0),
                job(3, 1.5, 3.0, 1),
            ],
        ];
        for jobs in cases {
            let p = DeadlineProblem::new(jobs, sites(), 0.0);
            let flow = p.min_feasible_stretch().expect("feasible");
            let lp = optimal_stretch_lp(&p).expect("feasible");
            assert!(
                (flow - lp).abs() < 1e-3 * flow.max(1.0),
                "flow {flow} vs LP {lp}"
            );
        }
    }

    #[test]
    fn interval_lp_reports_infeasible_below_the_optimum() {
        let p = DeadlineProblem::new(
            vec![job(0, 0.0, 1.0, 0), job(1, 0.0, 1.0, 0)],
            SiteView {
                sites: vec![Site {
                    cluster: 0,
                    speed: 1.0,
                    hosted_databanks: vec![0],
                }],
            },
            0.0,
        );
        // Optimum is 2.0 (see deadline tests); the interval [0.5, 1.5] is
        // entirely infeasible.
        assert_eq!(solve_system1_interval(&p, 0.5, 1.5), None);
        let v = solve_system1_interval(&p, 1.5, 3.0).expect("feasible");
        assert!((v - 2.0).abs() < 1e-6, "optimum {v}");
    }

    #[test]
    fn trivial_problem_returns_interval_floor() {
        let p = DeadlineProblem::new(vec![], sites(), 0.0);
        assert_eq!(solve_system1_interval(&p, 0.25, 1.0), Some(0.25));
        assert_eq!(optimal_stretch_lp(&p), Some(0.0));
    }
}
