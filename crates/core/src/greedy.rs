//! The greedy, non-preemptive baselines of §5.3: MCT and MCT-Div.
//!
//! **MCT** ("minimum completion time") is effectively the policy of the
//! production GriPPS system: each job, when it arrives, is placed on the
//! single processor that offers the earliest completion time, and commitments
//! are never revisited.  **MCT-Div** exploits divisibility: the arriving job
//! is spread over *all* processors able to serve it (the §3 rule), but still
//! without ever preempting or revisiting earlier commitments.

use crate::scheduler::{ScheduleError, ScheduleResult, Scheduler};
use stretch_workload::Instance;

/// The two greedy variants.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MctScheduler {
    divisible: bool,
}

impl MctScheduler {
    /// Plain MCT: one processor per job.
    pub fn mct() -> Self {
        MctScheduler { divisible: false }
    }

    /// MCT-Div: the job is divided over every eligible processor.
    pub fn mct_div() -> Self {
        MctScheduler { divisible: true }
    }

    /// Computes per-job completion times without building a full result.
    pub fn completions(&self, instance: &Instance) -> Result<Vec<f64>, ScheduleError> {
        let num_procs = instance.platform.num_processors();
        // Time at which each processor finishes its already-committed work.
        let mut available = vec![0.0f64; num_procs];
        let mut completions = vec![0.0f64; instance.num_jobs()];

        // Jobs are stored by increasing release date, which is the order in
        // which the greedy policies make their irrevocable decisions.
        for job in &instance.jobs {
            let eligible = instance.platform.eligible_processors(job.databank);
            if eligible.is_empty() {
                return Err(ScheduleError::Unschedulable(format!(
                    "job {} has no eligible processor",
                    job.id
                )));
            }
            if self.divisible {
                completions[job.id] = Self::place_divisible(
                    instance,
                    job.release,
                    job.work,
                    &eligible,
                    &mut available,
                );
            } else {
                completions[job.id] =
                    Self::place_single(instance, job.release, job.work, &eligible, &mut available);
            }
        }
        Ok(completions)
    }

    /// MCT: pick the single eligible processor with the earliest completion.
    fn place_single(
        instance: &Instance,
        release: f64,
        work: f64,
        eligible: &[usize],
        available: &mut [f64],
    ) -> f64 {
        let mut best_proc = eligible[0];
        let mut best_completion = f64::INFINITY;
        for &p in eligible {
            let start = available[p].max(release);
            let completion = start + work / instance.platform.processors[p].speed;
            if completion < best_completion {
                best_completion = completion;
                best_proc = p;
            }
        }
        available[best_proc] = best_completion;
        best_completion
    }

    /// MCT-Div: water-fill the job over all eligible processors so that every
    /// used processor finishes the job's share at the same instant `T`.
    fn place_divisible(
        instance: &Instance,
        release: f64,
        work: f64,
        eligible: &[usize],
        available: &mut [f64],
    ) -> f64 {
        // Each eligible processor can start helping at `max(available, release)`.
        let mut starts: Vec<(usize, f64, f64)> = eligible
            .iter()
            .map(|&p| {
                (
                    p,
                    available[p].max(release),
                    instance.platform.processors[p].speed,
                )
            })
            .collect();
        starts.sort_by(|a, b| a.1.total_cmp(&b.1));

        // Find the completion time T: processors join one by one as T passes
        // their start time; work done = Σ speed_i · (T - start_i)⁺.
        let mut used = 0usize;
        let mut speed_sum = 0.0;
        let mut completed_before = 0.0; // work done by the used set up to the next start
        let mut t = starts[0].1;
        let completion = loop {
            // Add every processor whose start time is `t`.
            while used < starts.len() && starts[used].1 <= t + 1e-12 {
                speed_sum += starts[used].2;
                used += 1;
            }
            let next_start = if used < starts.len() {
                starts[used].1
            } else {
                f64::INFINITY
            };
            // Work the current set can do before the next processor joins.
            let chunk = speed_sum * (next_start - t);
            if completed_before + chunk >= work - 1e-12 || next_start.is_infinite() {
                break t + (work - completed_before) / speed_sum;
            }
            completed_before += chunk;
            t = next_start;
        };
        for &(p, start, _) in &starts {
            if start < completion {
                available[p] = completion;
            }
        }
        completion
    }
}

impl Scheduler for MctScheduler {
    fn name(&self) -> &'static str {
        if self.divisible {
            "MCT-Div"
        } else {
            "MCT"
        }
    }

    fn schedule(&self, instance: &Instance) -> Result<ScheduleResult, ScheduleError> {
        let completions = self.completions(instance)?;
        Ok(ScheduleResult::from_completions(
            self.name(),
            instance,
            &completions,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stretch_platform::fixtures::small_platform;
    use stretch_workload::Job;

    fn instance(jobs: Vec<Job>) -> Instance {
        Instance::new(small_platform(), jobs)
    }

    #[test]
    fn mct_picks_the_fastest_idle_processor() {
        // One 100 MB job on databank 0: the fastest processors run at 20 MB/s.
        let inst = instance(vec![Job::new(0, 0.0, 100.0, 0)]);
        let r = MctScheduler::mct().schedule(&inst).unwrap();
        assert!((r.completion(0) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn mct_div_uses_the_whole_eligible_platform() {
        let inst = instance(vec![Job::new(0, 0.0, 120.0, 0)]);
        let r = MctScheduler::mct_div().schedule(&inst).unwrap();
        // 120 MB at 60 MB/s aggregate.
        assert!((r.completion(0) - 2.0).abs() < 1e-9);
        // Restricted databank 1: only cluster 1 (40 MB/s).
        let inst = instance(vec![Job::new(0, 0.0, 120.0, 1)]);
        let r = MctScheduler::mct_div().schedule(&inst).unwrap();
        assert!((r.completion(0) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn mct_spreads_successive_jobs_over_processors() {
        // Four identical jobs at t=0 on databank 0: MCT places one per
        // processor (two fast, two slow).
        let jobs = (0..4).map(|i| Job::new(i, 0.0, 100.0, 0)).collect();
        let r = MctScheduler::mct().schedule(&instance(jobs)).unwrap();
        let mut completions: Vec<f64> = (0..4).map(|j| r.completion(j)).collect();
        completions.sort_by(|a, b| a.total_cmp(b));
        // Two jobs at 5 s (20 MB/s) and two at 10 s (10 MB/s).
        assert!((completions[0] - 5.0).abs() < 1e-9);
        assert!((completions[1] - 5.0).abs() < 1e-9);
        assert!((completions[2] - 10.0).abs() < 1e-9);
        assert!((completions[3] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn mct_div_water_filling_with_staggered_availability() {
        // First job occupies everything until t=2; second job arrives at t=1
        // and must wait for processors to free up: with commitments never
        // revisited it starts only at t=2 on all processors.
        let inst = instance(vec![Job::new(0, 0.0, 120.0, 0), Job::new(1, 1.0, 60.0, 0)]);
        let r = MctScheduler::mct_div().schedule(&inst).unwrap();
        assert!((r.completion(0) - 2.0).abs() < 1e-9);
        assert!((r.completion(1) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn small_job_behind_big_commitment_is_badly_stretched() {
        // The §5.3 observation: MCT's non-preemptive commitments stretch small
        // jobs arriving while the system is loaded.
        let inst = instance(vec![Job::new(0, 0.0, 1200.0, 0), Job::new(1, 1.0, 6.0, 0)]);
        let mct = MctScheduler::mct().schedule(&inst).unwrap();
        let div = MctScheduler::mct_div().schedule(&inst).unwrap();
        // With MCT the big job only occupies one processor, so the small job
        // still finds a free one; but with MCT-Div the big job has taken every
        // processor until t = 20, so the small job is stretched enormously.
        assert!(mct.metrics.max_stretch < div.metrics.max_stretch);
        assert!(div.completion(1) > 20.0 - 1e-9);
        // Preemptive SRPT would have served it immediately; verify the
        // stretch gap that motivates the paper's heuristics.
        let srpt = crate::list::ListScheduler::srpt().schedule(&inst).unwrap();
        assert!(srpt.metrics.max_stretch * 5.0 < div.metrics.max_stretch);
    }

    #[test]
    fn completion_never_precedes_release() {
        let jobs = vec![
            Job::new(0, 0.0, 50.0, 0),
            Job::new(1, 3.0, 500.0, 1),
            Job::new(2, 7.0, 10.0, 0),
        ];
        for sched in [MctScheduler::mct(), MctScheduler::mct_div()] {
            let r = sched.schedule(&instance(jobs.clone())).unwrap();
            for o in &r.outcomes {
                assert!(o.completion >= o.release - 1e-9);
            }
        }
    }

    #[test]
    fn names() {
        assert_eq!(MctScheduler::mct().name(), "MCT");
        assert_eq!(MctScheduler::mct_div().name(), "MCT-Div");
    }
}
