//! The parametric deadline-solver engine.
//!
//! [`DeadlineProblem::min_feasible_stretch`] minimises over the monotone
//! feasibility predicate `F ↦ "a schedule of max-stretch ≤ F exists"`.  The
//! naive loop rebuilds the epochal intervals, the route set and a fresh flow
//! network for every bisection probe — ~25 times per scheduling decision, at
//! *every arrival* for the on-line schedulers.  Legrand–Su–Vivien's own
//! milestone analysis (§4.3.1) says most of that work is redundant: every
//! epochal time is a *linear* function `a + b·F` of the objective, so the
//! whole family of transportation instances shares one structure:
//!
//! * the **network is built once per problem** (`ParametricStructure`):
//!   one bin per (site × sorted-time-gap) position, one route per eligible
//!   (job, site, position) triple.  A probe at any `F` re-sorts the symbolic
//!   times (an `O(k)` pass on the nearly-sorted permutation), rebinds bin
//!   and route capacities in place — route *admissibility* is just a zero
//!   capacity — and warm-starts the early-exit max-flow from the previous
//!   residual flow ([`ParametricNetwork`]).
//! * the search is a **Newton iteration on minimum cuts**: an infeasible
//!   probe's maximum flow yields a minimum cut whose capacity is linear in
//!   `F` up to the next milestone (the next crossing of two adjacent
//!   symbolic times); solving `capacity(F) = demand − tol` — clamped at the
//!   milestone — gives the next candidate, and every `F` below it is
//!   *certified* infeasible by that same cut.  The iteration terminates on
//!   the exact boundary of the feasibility predicate, typically within a
//!   handful of max-flow runs instead of ~25 bisection probes.
//! * the blind exponential search for a feasible upper bound is replaced by
//!   a **certified bound**: serialising all pending work
//!   ([`DeadlineProblem::serialized_upper_bound`]) is a valid schedule, so
//!   its max-stretch is always feasible.
//!
//! A numerical safety net falls back to plain bisection — still on the
//! shared parametric structure — if the Newton iteration ever stalls.
//!
//! One solver holds its scratch ([`FlowWorkspace`], capacity and cut
//! buffers) across calls, so the on-line schedulers allocate almost nothing
//! inside the probe loop.
//!
//! # Cross-event solver memory
//!
//! A solver fed a *stream* of problems — the on-line schedulers call it at
//! every arrival and completion — additionally carries state **across
//! events** when its [`SolverConfig`] has `warm_start` on (the default):
//!
//! * **Residual carry-over.**  The flow of the last feasible probe is
//!   remembered per `(job id, site, interval position)` — all three stable
//!   across events — and replayed, clamped to the new capacities, into the
//!   next event's network before its first probe
//!   ([`ParametricNetwork::seed_route_flow`]).  Consecutive events share
//!   most of their jobs, so the first (most expensive) probe only has to
//!   route the new arrivals and whatever the capacity shift displaced,
//!   instead of rebuilding the whole flow from zero.
//! * **Basis remapping.**  The System-(2) min-cost solve hands the backend
//!   stable node keys (same identities as above), letting the network
//!   simplex remap its previous spanning-tree basis onto the new event's
//!   network — see [`stretch_flow::BasisRemap`].
//!
//! Both are speed levers only: warm-started and cold solves return
//! **bit-identical** objectives and allocations (`STRETCH_WARM_START={0,1}`
//! in CI, pinned by the differential-oracle suite).

use crate::config::SolverConfig;
use crate::deadline::{AllocationPlan, DeadlineProblem, STRETCH_TOL};
use crate::delta::{DeltaStats, EpochSplicer, System2Arena};
use stretch_flow::{FastMap, FlowWorkspace, MinCostBackend, ParametricNetwork};

/// Feasibility tolerance of the flow probes, matching
/// [`stretch_flow::TransportInstance::is_feasible`].
const FEAS_TOL: f64 = 1e-6;

/// A reusable engine solving deadline problems by parametric flow probes.
///
/// Create one per scheduler (or per run) and feed it every
/// [`DeadlineProblem`] the scheduler encounters; all scratch memory — and
/// the min-cost backend named by its [`SolverConfig`], which may carry a
/// warm-startable basis — is reused across calls.
pub struct ParametricDeadlineSolver {
    workspace: FlowWorkspace,
    /// Min-cut scratch: source-side flags over jobs and bins.
    cut_sources: Vec<bool>,
    cut_bins: Vec<bool>,
    /// The configured System-(2) min-cost engine, held across events so a
    /// warm-startable backend keeps (and remaps) its basis.
    backend: Box<dyn MinCostBackend + Send>,
    /// Cross-event residual carry: flow of the previous event's final
    /// feasible probe, grouped per job.  `carry_jobs` maps an instance-wide
    /// job id to a `(start, len)` slice of `carry_flows`, whose entries are
    /// `(site, interval position, flow)` — all identities stable across
    /// events even though every event rebuilds the epochal structure from
    /// scratch.  Empty when `config.warm_start` is off or the previous solve
    /// exited through a fallback path.
    ///
    /// Grouping by job (instead of one map entry per route) keeps the
    /// per-event seeding cost proportional to the *carried flow pattern* —
    /// a handful of entries per surviving job — rather than to the route
    /// count, which is orders of magnitude larger.
    carry_jobs: FastMap<usize, (u32, u32)>,
    carry_flows: Vec<(u32, u32, f64)>,
    /// Persistent cross-event engine of the incremental path
    /// (`STRETCH_INCREMENTAL`, default on): the epochal line splicer, the
    /// persistent parametric structure it refills, and the System-(2)
    /// solve arena.  `None` when the config runs rebuilds.
    incremental: Option<IncrementalEngine>,
    config: SolverConfig,
}

/// The solver's persistent incremental state (see [`crate::delta`]): the
/// spliced line multiset, the parametric structure whose buffers survive
/// from event to event, and the System-(2) arena.
#[derive(Default)]
struct IncrementalEngine {
    splicer: EpochSplicer,
    structure: Option<ParametricStructure>,
    arena: System2Arena,
}

impl Default for ParametricDeadlineSolver {
    fn default() -> Self {
        Self::with_config(SolverConfig::default())
    }
}

/// The shared structure of a deadline problem's transportation instances,
/// valid for *every* objective `F`: symbolic epochal times, one bin per
/// (site, sorted-gap) position and one route per eligible (job, site,
/// position) triple.
struct ParametricStructure {
    /// Symbolic times `a + b·F`, deduplicated by exact `(a, b)` identity.
    times: Vec<(f64, f64)>,
    /// Permutation of `times`, sorted by value at the last probed `F`.
    order: Vec<usize>,
    /// Values of the ordered times at the last probed `F`.
    sorted_vals: Vec<f64>,
    network: ParametricNetwork,
    num_intervals: usize,
    site_speeds: Vec<f64>,
    demands: Vec<f64>,
    /// Effective ready time (`max(ready, now)`) per job.
    ready: Vec<f64>,
    /// Deadline coefficients (release, work) per job.
    deadline: Vec<(f64, f64)>,
    /// Capacity scratch, refilled per probe.
    bin_caps: Vec<f64>,
    route_caps: Vec<f64>,
    /// Deadline values at the current probe point, refilled per probe.
    deadline_vals: Vec<f64>,
    /// Per-job route layout (`jobs.len() + 1` prefix offsets into the route
    /// list, which is built job-contiguous): the carry-over seeding jumps
    /// straight to a job's routes instead of scanning all of them.
    route_start: Vec<usize>,
    /// Per-job first admissible interval position (routes cover
    /// `i_min..=i_max` per hosting site).
    route_imin: Vec<usize>,
    /// Per-job one-past-last admissible position.
    route_iend: Vec<usize>,
    /// Hosting sites of each job, in route construction order.
    hosting: Vec<Vec<usize>>,
    /// Route construction scratch, kept so [`Self::refill`] builds the
    /// route list without allocating.
    routes_scratch: Vec<(usize, usize)>,
}

impl ParametricStructure {
    /// Builds the structure once, for probes within `[lo, hi]`; capacities
    /// are bound per probe.
    fn new(problem: &DeadlineProblem, lo: f64, hi: f64) -> Self {
        let mut structure = Self::empty();
        structure.refill(problem, lo, hi, None);
        structure
    }

    /// A structure with every buffer empty; [`Self::refill`] populates it.
    /// The incremental path keeps one of these alive across events.
    fn empty() -> Self {
        ParametricStructure {
            times: Vec::new(),
            order: Vec::new(),
            sorted_vals: Vec::new(),
            network: ParametricNetwork::empty(),
            num_intervals: 0,
            site_speeds: Vec::new(),
            demands: Vec::new(),
            ready: Vec::new(),
            deadline: Vec::new(),
            bin_caps: Vec::new(),
            route_caps: Vec::new(),
            deadline_vals: Vec::new(),
            route_start: Vec::new(),
            route_imin: Vec::new(),
            route_iend: Vec::new(),
            hosting: Vec::new(),
            routes_scratch: Vec::new(),
        }
    }

    /// (Re)populates the structure for `problem`, for probes within
    /// `[lo, hi]`.  This is the single fill sequence of both solver paths:
    /// the rebuild path runs it over a fresh [`Self::empty`], the
    /// incremental path over last event's buffers — with the symbolic times
    /// handed in pre-spliced (`spliced_times`, from
    /// [`crate::delta::EpochSplicer`]) instead of re-sorted from scratch.
    /// A spliced line set is bitwise-equal to the fresh construction by
    /// the splicer's contract (checked here in debug builds), so both
    /// paths produce identical structures by construction.
    fn refill(
        &mut self,
        problem: &DeadlineProblem,
        lo: f64,
        hi: f64,
        spliced_times: Option<&[(f64, f64)]>,
    ) {
        match spliced_times {
            Some(lines) => {
                #[cfg(debug_assertions)]
                {
                    let mut fresh: Vec<(f64, f64)> = Vec::with_capacity(2 * problem.jobs.len() + 1);
                    fresh.push((problem.now, 0.0));
                    for job in &problem.jobs {
                        fresh.push((job.ready.max(problem.now), 0.0));
                        fresh.push((job.release, job.work));
                    }
                    fresh.sort_by(|x, y| x.0.total_cmp(&y.0).then(x.1.total_cmp(&y.1)));
                    fresh.dedup();
                    let bits = |ts: &[(f64, f64)]| -> Vec<(u64, u64)> {
                        ts.iter().map(|t| (t.0.to_bits(), t.1.to_bits())).collect()
                    };
                    debug_assert_eq!(
                        bits(lines),
                        bits(&fresh),
                        "spliced symbolic times diverged from the rebuild construction"
                    );
                }
                self.times.clear();
                self.times.extend_from_slice(lines);
            }
            None => {
                self.times.clear();
                self.times.reserve(2 * problem.jobs.len() + 1);
                self.times.push((problem.now, 0.0));
                for job in &problem.jobs {
                    self.times.push((job.ready.max(problem.now), 0.0));
                    // For any probed F (at or above the stretch lower bound)
                    // every deadline lies after `now`, so the `max(now, ·)`
                    // clamp of `epochal_times` is inactive and the deadline
                    // is linear.
                    self.times.push((job.release, job.work));
                }
                // Identical linear functions never separate: deduplicate by
                // exact identity (e.g. the shared ready time of the on-line
                // problems).
                self.times
                    .sort_by(|x, y| x.0.total_cmp(&y.0).then(x.1.total_cmp(&y.1)));
                self.times.dedup();
            }
        }
        let times = &self.times;
        let k = times.len() - 1;
        let num_sites = problem.sites.len();
        self.demands.clear();
        self.demands
            .extend(problem.jobs.iter().map(|j| j.remaining));
        // One route per (job, hosting site, sorted position) triple; per
        // probe, inadmissible routes simply get capacity zero.  Positions a
        // job can never use anywhere in `[lo, hi]` are pruned up front: a
        // linear time function sits below a job's ready time (or above its
        // deadline) on the whole range iff it does at both endpoints.
        let eval = |&(a, b): &(f64, f64), f: f64| a + b * f;
        self.routes_scratch.clear();
        self.route_start.clear();
        self.route_imin.clear();
        self.route_iend.clear();
        for host in &mut self.hosting {
            host.clear();
        }
        self.hosting.resize_with(problem.jobs.len(), Vec::new);
        for (j, job) in problem.jobs.iter().enumerate() {
            self.route_start.push(self.routes_scratch.len());
            let ready = job.ready.max(problem.now);
            let (d_lo, d_hi) = (job.deadline(lo), job.deadline(hi));
            // Positions below `i_min` always start before the ready time.
            let i_min = times
                .iter()
                .filter(|t| eval(t, lo) < ready - 1e-9 && eval(t, hi) < ready - 1e-9)
                .count();
            // At most `cnt_max` times ever sit at or before the deadline, so
            // positions needing `i + 2` of them are never admissible.
            let cnt_max = times
                .iter()
                .filter(|t| eval(t, lo) <= d_lo + 1e-9 || eval(t, hi) <= d_hi + 1e-9)
                .count();
            let i_max = cnt_max.saturating_sub(2).min(k.saturating_sub(1));
            for (s, site) in problem.sites.sites.iter().enumerate() {
                if !site.hosts(job.databank) {
                    continue;
                }
                self.hosting[j].push(s);
                for i in i_min..=i_max {
                    self.routes_scratch.push((j, s * k + i));
                }
            }
            self.route_imin.push(i_min);
            self.route_iend.push(
                if self.routes_scratch.len() > *self.route_start.last().unwrap() {
                    i_max + 1
                } else {
                    i_min
                },
            );
        }
        self.route_start.push(self.routes_scratch.len());
        self.network
            .rebuild(&self.demands, num_sites * k, &self.routes_scratch);
        // Seed the permutation with the order at `lo` so the per-probe
        // insertion sort starts from a (nearly) sorted state: construction
        // order — sorted by the (a, b) tuples — can be arbitrarily far from
        // value order, which would make the first probe quadratic.
        self.order.clear();
        self.order.extend(0..times.len());
        self.order.sort_unstable_by(|&x, &y| {
            let vx = times[x].0 + times[x].1 * lo;
            let vy = times[y].0 + times[y].1 * lo;
            vx.total_cmp(&vy)
        });
        self.sorted_vals.clear();
        self.sorted_vals.resize(self.times.len(), 0.0);
        self.num_intervals = k;
        self.site_speeds.clear();
        self.site_speeds
            .extend(problem.sites.sites.iter().map(|s| s.speed));
        self.ready.clear();
        self.ready
            .extend(problem.jobs.iter().map(|j| j.ready.max(problem.now)));
        self.deadline.clear();
        self.deadline
            .extend(problem.jobs.iter().map(|j| (j.release, j.work)));
    }

    /// Binds the structure to objective `stretch`: re-sort the symbolic
    /// times and rebind every capacity in place.  [`Self::probe_current`]
    /// then runs the flow; splitting the two lets the caller seed
    /// carried-over flow in between.
    fn bind(&mut self, stretch: f64) {
        // The permutation is nearly sorted across probes; a stable insertion
        // sort keeps this O(k) in the common case.
        let times = &self.times;
        let eval = |idx: usize| times[idx].0 + times[idx].1 * stretch;
        for i in 1..self.order.len() {
            let mut j = i;
            while j > 0 && eval(self.order[j - 1]) > eval(self.order[j]) {
                self.order.swap(j - 1, j);
                j -= 1;
            }
        }
        for (pos, &idx) in self.order.iter().enumerate() {
            self.sorted_vals[pos] = eval(idx);
        }

        let k = self.num_intervals;
        self.bin_caps.clear();
        for &speed in &self.site_speeds {
            for i in 0..k {
                let len = self.sorted_vals[i + 1] - self.sorted_vals[i];
                self.bin_caps.push(speed * len.max(0.0));
            }
        }
        self.deadline_vals.clear();
        self.deadline_vals
            .extend(self.deadline.iter().map(|&(r, w)| r + w * stretch));
        self.route_caps.clear();
        for &(j, bin) in self.network.routes() {
            let i = bin % k;
            let admissible = self.ready[j] <= self.sorted_vals[i] + 1e-9
                && self.deadline_vals[j] >= self.sorted_vals[i + 1] - 1e-9;
            self.route_caps
                .push(if admissible { self.demands[j] } else { 0.0 });
        }
        let (bin_caps, route_caps) = (&self.bin_caps, &self.route_caps);
        self.network.set_capacities(bin_caps, route_caps);
    }

    /// One feasibility probe at the currently bound objective: resume the
    /// early-exit max-flow from whatever residual flow survived the rebind
    /// (previous probe, or carried-over seed).
    fn probe_current(&mut self, ws: &mut FlowWorkspace) -> bool {
        self.network.probe_feasible(FEAS_TOL, ws)
    }

    /// The minimum-cut capacity as a linear function `a + b·F`, valid from
    /// the last probed `F` up to [`ParametricStructure::next_crossing`].
    ///
    /// Only meaningful right after an unsuccessful probe (the residual flow
    /// then is a maximum flow).  Crossing source and route edges contribute
    /// their (constant) capacities; crossing bin edges contribute their
    /// linear lengths — except bins already degenerate and shrinking, whose
    /// true capacity is pinned at zero.
    fn cut_coefficients(
        &self,
        workspace: &mut FlowWorkspace,
        sources: &mut Vec<bool>,
        bins: &mut Vec<bool>,
    ) -> (f64, f64) {
        self.network.residual_cut(workspace, sources, bins);
        let mut a = 0.0;
        let mut b = 0.0;
        for (j, &reachable) in sources.iter().enumerate() {
            if !reachable {
                a += self.demands[j];
            }
        }
        for (idx, &(j, bin)) in self.network.routes().iter().enumerate() {
            if sources[j] && !bins[bin] {
                a += self.route_caps[idx];
            }
        }
        let k = self.num_intervals;
        for (bin, &reach) in bins.iter().enumerate() {
            if !reach {
                continue;
            }
            let speed = self.site_speeds[bin / k];
            let i = bin % k;
            let (a0, b0) = self.times[self.order[i]];
            let (a1, b1) = self.times[self.order[i + 1]];
            let (la, lb) = (a1 - a0, b1 - b0);
            let len_now = self.sorted_vals[i + 1] - self.sorted_vals[i];
            if len_now <= 1e-12 && lb <= 0.0 {
                // Degenerate and shrinking: capacity stays zero.
                continue;
            }
            a += speed * la;
            b += speed * lb;
        }
        (a, b)
    }

    /// The smallest objective strictly above `stretch` where two adjacent
    /// symbolic times cross (the next milestone), if any.  Cut
    /// extrapolations are only sound up to this point: beyond it interval
    /// lengths change sign and route admissibilities flip.
    fn next_crossing(&self, stretch: f64) -> Option<f64> {
        let floor = stretch * (1.0 + 1e-12);
        let mut next: Option<f64> = None;
        for w in self.order.windows(2) {
            let (a0, b0) = self.times[w[0]];
            let (a1, b1) = self.times[w[1]];
            let (da, db) = (a1 - a0, b1 - b0);
            // Only converging pairs ever cross.
            if db >= 0.0 {
                continue;
            }
            let root = -da / db;
            if root > floor && root.is_finite() {
                next = Some(next.map_or(root, |n: f64| n.min(root)));
            }
        }
        next
    }
}

impl ParametricDeadlineSolver {
    /// Creates a solver with empty scratch (grows on first use) and the
    /// default [`SolverConfig`] (`STRETCH_MINCOST_BACKEND`, read once).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a solver with an explicit configuration.
    pub fn with_config(config: SolverConfig) -> Self {
        ParametricDeadlineSolver {
            workspace: FlowWorkspace::new(),
            cut_sources: Vec::new(),
            cut_bins: Vec::new(),
            backend: config.instantiate(),
            carry_jobs: FastMap::default(),
            carry_flows: Vec::new(),
            incremental: config.incremental.then(IncrementalEngine::default),
            config,
        }
    }

    /// Splice/rebuild counters of the incremental engine, `None` when the
    /// solver runs per-event rebuilds (`incremental` off in its config).
    pub fn incremental_stats(&self) -> Option<DeltaStats> {
        self.incremental.as_ref().map(|engine| DeltaStats {
            splices: engine.splicer.splices(),
            rebuilds: engine.splicer.rebuilds(),
        })
    }

    /// The configuration this solver was built with.
    pub fn config(&self) -> SolverConfig {
        self.config
    }

    /// One from-scratch feasibility probe (fresh topology, reused scratch).
    pub fn feasible(&mut self, problem: &DeadlineProblem, stretch: f64) -> bool {
        if problem.is_trivial() {
            return true;
        }
        let (t, _) = problem.transport(stretch, |_, _| 0.0);
        t.is_feasible_with(FEAS_TOL, &mut self.workspace)
    }

    /// The smallest achievable max-stretch; `None` when some job cannot be
    /// served by any site.
    ///
    /// Functionally equivalent to the from-scratch
    /// [`DeadlineProblem::min_feasible_stretch_reference`] (within
    /// [`STRETCH_TOL`]; cross-checked by the property tests), but solved by
    /// Newton iteration on parametric minimum cuts over a structure built
    /// once.
    pub fn min_feasible_stretch(&mut self, problem: &DeadlineProblem) -> Option<f64> {
        if problem.is_trivial() {
            return Some(0.0);
        }
        let lo_bound = problem.stretch_lower_bound();
        if !lo_bound.is_finite() {
            self.clear_carry();
            return None;
        }
        // Certified upper bound: serialising the pending jobs is a valid
        // schedule, so its stretch is feasible (up to flow tolerances).
        let Some(ub) = problem.serialized_upper_bound() else {
            self.clear_carry();
            return None;
        };
        let ub = ub.max(lo_bound) * (1.0 + 1e-9);

        let demand: f64 = problem.jobs.iter().map(|j| j.remaining).sum();
        let slack = FEAS_TOL.max(demand * FEAS_TOL);
        let target = demand - slack;

        if let Some(mut engine) = self.incremental.take() {
            // Incremental path: splice this event's delta into the
            // persistent line multiset, then refill the persistent
            // structure's buffers with the pre-spliced times.  The Newton
            // search below is the same code over the same values either
            // way — only the memory is reused.
            engine.splicer.apply(problem);
            let mut structure = engine
                .structure
                .take()
                .unwrap_or_else(ParametricStructure::empty);
            structure.refill(problem, lo_bound, ub, Some(engine.splicer.times()));
            let answer = self.newton_search(problem, &mut structure, lo_bound, ub, target);
            engine.structure = Some(structure);
            self.incremental = Some(engine);
            answer
        } else {
            let mut structure = ParametricStructure::new(problem, lo_bound, ub);
            self.newton_search(problem, &mut structure, lo_bound, ub, target)
        }
    }

    /// The Newton-on-minimum-cuts iteration (with its bisection safety
    /// net) over an already refilled `structure`.  Shared verbatim by the
    /// rebuild and incremental paths of [`Self::min_feasible_stretch`].
    fn newton_search(
        &mut self,
        problem: &DeadlineProblem,
        structure: &mut ParametricStructure,
        lo_bound: f64,
        ub: f64,
        target: f64,
    ) -> Option<f64> {
        let debug = crate::config::SolverConfig::env_flag("STRETCH_NEWTON_DEBUG");
        // The iteration starts at the lower bound; its first probe doubles
        // as the `feasible(lo_bound)` fast path.
        let mut f = lo_bound;
        let mut first_probe = true;
        for _ in 0..64 {
            structure.bind(f);
            if std::mem::take(&mut first_probe) && self.config.warm_start {
                // Cross-event residual carry: replay the previous event's
                // flow (surviving jobs only — departed keys simply miss)
                // before the expensive first augmentation run.
                self.seed_carry(problem, structure);
            }
            if structure.probe_current(&mut self.workspace) {
                if self.config.warm_start {
                    self.record_carry(problem, structure);
                }
                return Some(f);
            }
            // The probe ended at a maximum flow; its minimum cut bounds the
            // feasible region from below, up to the next milestone.
            let (a, b) = structure.cut_coefficients(
                &mut self.workspace,
                &mut self.cut_sources,
                &mut self.cut_bins,
            );
            // Land a hair *above* the cut root: at the exact root the cut
            // capacity equals the probe target, so the feasibility verdict
            // there would hinge on floating-point noise — and the verdict
            // must not depend on which residual flow (cold, or carried
            // over) the probe happened to start from.  The overshoot gives
            // the comparison a real margin at a cost of ≤1e-9 relative on
            // the answer, far inside STRETCH_TOL.
            let cut_root = if b > 1e-12 {
                ((target - a) / b) * (1.0 + 1e-9)
            } else {
                f64::INFINITY
            };
            let crossing = structure.next_crossing(f).unwrap_or(f64::INFINITY);
            if debug {
                eprintln!(
                    "newton: f={f:.9} cut=({a:.6}, {b:.6}) root={cut_root:.9} crossing={crossing:.9} target={target:.6}"
                );
            }
            let mut next = cut_root.min(crossing);
            // Strict-progress guard against floating-point stalls (the
            // negation also catches a NaN `next` — which is exactly why
            // the "hard to read" negated comparison is the right tool).
            let floor = f * (1.0 + 1e-12) + 1e-300;
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            if !(next > floor) {
                next = f * (1.0 + 1e-9) + 1e-300;
            }
            if next >= ub {
                // Every F below `next` is infeasible, and the serialised
                // bound certifies `ub`: the optimum is `ub` itself.
                self.clear_carry();
                return self.confirm_upper_bound(problem, ub);
            }
            f = next;
        }
        // Newton stalled (pathological numerics): fall back to a plain
        // bisection on from-scratch probes (the structure's route pruning
        // only covers `[lo_bound, ub]`, and a widened upper bound may lie
        // beyond it).  Everything at or below `f` failed a probe, and `ub`
        // is certified feasible.  The fallback probes don't maintain the
        // carry, so the next event starts its probes cold.
        self.clear_carry();
        let mut hi = self.confirm_upper_bound(problem, ub)?.max(f);
        let mut lo = f;
        while (hi - lo) > STRETCH_TOL * hi.max(1.0) {
            let mid = 0.5 * (lo + hi);
            if self.feasible(problem, mid) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Some(hi)
    }

    /// Drops the cross-event carry (fallback exits, infeasible problems).
    fn clear_carry(&mut self) {
        self.carry_jobs.clear();
        self.carry_flows.clear();
    }

    /// Seeds the freshly bound `structure` with the remembered flow of the
    /// previous event, restricted to surviving `(job, site, position)`
    /// routes and clamped to the new capacities.  Purely a warm start: the
    /// subsequent probe computes the same maximum flow either way.
    ///
    /// Cost: one map lookup per pending job plus one O(1) route-index
    /// computation per carried flow entry, using the job-contiguous route
    /// layout recorded by [`ParametricStructure::new`].
    fn seed_carry(&mut self, problem: &DeadlineProblem, structure: &mut ParametricStructure) {
        if self.carry_jobs.is_empty() {
            return;
        }
        for (j, job) in problem.jobs.iter().enumerate() {
            let Some(&(start, len)) = self.carry_jobs.get(&job.job_id) else {
                continue;
            };
            let i_min = structure.route_imin[j];
            let i_end = structure.route_iend[j];
            let span = i_end - i_min;
            if span == 0 {
                continue;
            }
            for &(site, pos, amount) in &self.carry_flows[start as usize..(start + len) as usize] {
                let (site, pos) = (site as usize, pos as usize);
                if pos < i_min || pos >= i_end {
                    continue;
                }
                let Some(rank) = structure.hosting[j].iter().position(|&s| s == site) else {
                    continue;
                };
                let idx = structure.route_start[j] + rank * span + (pos - i_min);
                structure.network.seed_route_flow(idx, amount);
            }
        }
    }

    /// Remembers where the final (feasible) probe of this event routed its
    /// flow, as the seed for the next event's first probe.
    fn record_carry(&mut self, problem: &DeadlineProblem, structure: &ParametricStructure) {
        self.clear_carry();
        let k = structure.num_intervals;
        for (j, job) in problem.jobs.iter().enumerate() {
            let start = self.carry_flows.len() as u32;
            for idx in structure.route_start[j]..structure.route_start[j + 1] {
                let flow = structure.network.flow_on_route(idx);
                if flow > 1e-12 {
                    let (_, bin) = structure.network.routes()[idx];
                    self.carry_flows
                        .push(((bin / k) as u32, (bin % k) as u32, flow));
                }
            }
            let len = self.carry_flows.len() as u32 - start;
            if len > 0 {
                self.carry_jobs.insert(job.job_id, (start, len));
            }
        }
    }

    /// Verifies the certified upper bound with an actual probe, absorbing
    /// numerical slack at the feasibility tolerance if needed.
    fn confirm_upper_bound(&mut self, problem: &DeadlineProblem, ub: f64) -> Option<f64> {
        let mut hi = ub;
        let mut widenings = 0;
        while !self.feasible(problem, hi) {
            hi *= if widenings < 8 { 1.0 + 1e-3 } else { 2.0 };
            widenings += 1;
            if widenings > 48 {
                return None;
            }
        }
        Some(hi)
    }

    /// Solves System (2) at objective `stretch` on the configured min-cost
    /// backend, reusing the solver scratch; see
    /// [`DeadlineProblem::system2_allocation`].
    pub fn system2_allocation(
        &mut self,
        problem: &DeadlineProblem,
        stretch: f64,
    ) -> Option<AllocationPlan> {
        if let Some(engine) = self.incremental.as_mut() {
            // Same fill, same solve, persistent memory: see
            // [`crate::delta::System2Arena`].
            engine
                .arena
                .solve(problem, stretch, self.backend.as_mut(), &mut self.workspace)
        } else {
            problem.system2_allocation_with_backend(
                stretch,
                self.backend.as_mut(),
                &mut self.workspace,
            )
        }
    }

    /// Ships every remaining unit of work at zero cost (the System-(1)
    /// feasibility allocation), reusing the solver scratch.
    pub fn feasibility_allocation(
        &mut self,
        problem: &DeadlineProblem,
        stretch: f64,
    ) -> Option<AllocationPlan> {
        problem.feasibility_allocation_with(stretch, &mut self.workspace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deadline::PendingJob;
    use crate::sites::{Site, SiteView};

    fn sites() -> SiteView {
        SiteView {
            sites: vec![
                Site {
                    cluster: 0,
                    speed: 1.0,
                    hosted_databanks: vec![0],
                },
                Site {
                    cluster: 1,
                    speed: 2.0,
                    hosted_databanks: vec![0, 1],
                },
            ],
        }
    }

    fn job(id: usize, release: f64, work: f64, databank: usize) -> PendingJob {
        PendingJob {
            job_id: id,
            release,
            ready: release,
            work,
            remaining: work,
            databank,
        }
    }

    #[test]
    fn matches_the_reference_bisection() {
        let problems = vec![
            vec![job(0, 0.0, 4.0, 0)],
            vec![job(0, 0.0, 1.0, 0), job(1, 0.0, 1.0, 0)],
            vec![
                job(0, 0.0, 3.0, 0),
                job(1, 1.0, 1.0, 0),
                job(2, 2.0, 2.0, 1),
            ],
            vec![
                job(0, 0.0, 2.5, 1),
                job(1, 0.5, 1.5, 0),
                job(2, 0.75, 4.0, 0),
                job(3, 3.0, 0.5, 1),
            ],
        ];
        let mut solver = ParametricDeadlineSolver::new();
        for jobs in problems {
            let p = DeadlineProblem::new(jobs, sites(), 0.0);
            let fast = solver.min_feasible_stretch(&p).unwrap();
            let slow = p.min_feasible_stretch_reference().unwrap();
            assert!(
                (fast - slow).abs() <= STRETCH_TOL * slow.max(1.0) * 2.0,
                "parametric {fast} vs reference {slow}"
            );
        }
    }

    #[test]
    fn matches_reference_on_identical_sibling_jobs() {
        // Jobs sharing release AND size produce exactly-identical deadline
        // functions (merged at construction); jobs of equal size but
        // different release produce parallel ones.
        let jobs = vec![
            job(0, 0.0, 2.0, 0),
            job(1, 0.0, 2.0, 0),
            job(2, 1.0, 2.0, 1),
            job(3, 1.0, 2.0, 1),
        ];
        let p = DeadlineProblem::new(jobs, sites(), 0.0);
        let fast = ParametricDeadlineSolver::new()
            .min_feasible_stretch(&p)
            .unwrap();
        let slow = p.min_feasible_stretch_reference().unwrap();
        assert!(
            (fast - slow).abs() <= STRETCH_TOL * slow.max(1.0) * 2.0,
            "parametric {fast} vs reference {slow}"
        );
    }

    #[test]
    fn solver_is_reusable_across_problems() {
        let mut solver = ParametricDeadlineSolver::new();
        let p1 = DeadlineProblem::new(vec![job(0, 0.0, 4.0, 0)], sites(), 0.0);
        let p2 = DeadlineProblem::new(
            vec![job(0, 0.0, 1.0, 1), job(1, 0.25, 2.0, 0)],
            sites(),
            0.25,
        );
        let a1 = solver.min_feasible_stretch(&p1).unwrap();
        let a2 = solver.min_feasible_stretch(&p2).unwrap();
        // Solving p1 again after p2 gives the same answer: no state leaks.
        let a1_again = solver.min_feasible_stretch(&p1).unwrap();
        assert!((a1 - a1_again).abs() <= STRETCH_TOL * a1.max(1.0));
        assert!(a2.is_finite() && a2 > 0.0);
    }

    #[test]
    fn infeasible_databank_is_rejected() {
        let p = DeadlineProblem::new(vec![job(0, 0.0, 1.0, 9)], sites(), 0.0);
        assert_eq!(
            ParametricDeadlineSolver::new().min_feasible_stretch(&p),
            None
        );
    }

    #[test]
    fn trivial_problem_is_zero() {
        let p = DeadlineProblem::new(vec![], sites(), 0.0);
        assert_eq!(
            ParametricDeadlineSolver::new().min_feasible_stretch(&p),
            Some(0.0)
        );
    }

    #[test]
    fn answers_sit_on_the_feasibility_boundary() {
        let p = DeadlineProblem::new(
            vec![
                job(0, 0.0, 2.0, 0),
                job(1, 0.5, 1.0, 0),
                job(2, 1.0, 3.0, 1),
            ],
            sites(),
            0.0,
        );
        let mut solver = ParametricDeadlineSolver::new();
        let opt = solver.min_feasible_stretch(&p).unwrap();
        assert!(!solver.feasible(&p, opt * 0.99));
        assert!(solver.feasible(&p, opt * 1.01));
    }
}
