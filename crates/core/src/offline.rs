//! The off-line optimal max-stretch scheduler (§4.3.1).
//!
//! With every release date known in advance, minimising the max-stretch
//! reduces to a deadline-scheduling problem parametrised by the objective
//! `F`: binary-search the milestones, check feasibility on each candidate
//! interval, and take the smallest feasible `F`.  Two back-ends are
//! available:
//!
//! * [`OfflineBackend::Flow`] (default): feasibility as a transportation
//!   max-flow plus a numeric bisection — fast, used for the simulation
//!   sweeps;
//! * [`OfflineBackend::Lp`]: the paper's System (1) solved exactly on the
//!   final milestone interval with the `stretch-lp` simplex.
//!
//! The optimal objective value is then realised as an actual schedule by
//! serialising the interval allocation per site (deadline order), which keeps
//! every completion within its deadline and therefore achieves the optimal
//! max-stretch.

use crate::config::SolverConfig;
use crate::deadline::{DeadlineProblem, PendingJob};
use crate::parametric::ParametricDeadlineSolver;
use crate::plan::{execute_sequences, site_sequences, PieceOrdering};
use crate::scheduler::{ScheduleError, ScheduleResult, Scheduler};
use crate::sites::SiteView;
use crate::system1;
use stretch_workload::Instance;

/// Which engine computes the optimal max-stretch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum OfflineBackend {
    /// Transportation max-flow feasibility + bisection (fast, default).
    #[default]
    Flow,
    /// The paper's System (1) linear program on the final milestone interval.
    Lp,
}

/// The optimal max-stretch value together with the problem it was computed on.
#[derive(Clone, Debug)]
pub struct OptimalStretch {
    /// The minimal achievable max-stretch, in the paper's `F_j / W_j` units.
    pub stretch: f64,
    /// The deadline problem (site view + pending jobs) used to compute it.
    pub problem: DeadlineProblem,
}

/// Builds the off-line deadline problem of an instance: every job pending
/// with its full work, ready at its release date.
pub fn offline_problem(instance: &Instance) -> DeadlineProblem {
    let sites = SiteView::of(instance);
    // Release dates are nonnegative in this model, so the off-line problem
    // always starts at time zero (the seed computed the same value through a
    // min/max chain).
    let now = 0.0;
    let jobs = instance
        .jobs
        .iter()
        .map(|j| PendingJob {
            job_id: j.id,
            release: j.release,
            ready: j.release,
            work: j.work,
            remaining: j.work,
            databank: j.databank,
        })
        .collect();
    DeadlineProblem::new(jobs, sites, now)
}

/// Computes the optimal (off-line) max-stretch of an instance.
pub fn optimal_max_stretch(
    instance: &Instance,
    backend: OfflineBackend,
) -> Result<OptimalStretch, ScheduleError> {
    let problem = offline_problem(instance);
    let stretch = match backend {
        OfflineBackend::Flow => problem.min_feasible_stretch(),
        OfflineBackend::Lp => system1::optimal_stretch_lp(&problem),
    }
    .ok_or_else(|| ScheduleError::Unschedulable("no finite max-stretch is achievable".into()))?;
    Ok(OptimalStretch { stretch, problem })
}

/// The off-line optimal max-stretch scheduler.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OfflineScheduler {
    backend: OfflineBackend,
    config: SolverConfig,
}

impl OfflineScheduler {
    /// Creates the scheduler with the default (flow) back-end.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates the scheduler with an explicit back-end.
    pub fn with_backend(backend: OfflineBackend) -> Self {
        Self::with_backend_and_config(backend, SolverConfig::default())
    }

    /// Creates the scheduler with an explicit solver configuration and the
    /// default (flow) back-end (the realised allocation is a zero-cost
    /// transportation solve, so the min-cost backend choice only matters for
    /// uniformity with the on-line schedulers — both backends must, and do,
    /// accept it).
    pub fn with_config(config: SolverConfig) -> Self {
        Self::with_backend_and_config(OfflineBackend::default(), config)
    }

    /// Creates the scheduler with both axes explicit: which engine computes
    /// the optimal max-stretch, and which min-cost backend realises the
    /// allocation.
    pub fn with_backend_and_config(backend: OfflineBackend, config: SolverConfig) -> Self {
        OfflineScheduler { backend, config }
    }
}

impl Scheduler for OfflineScheduler {
    fn name(&self) -> &'static str {
        "Offline"
    }

    fn schedule(&self, instance: &Instance) -> Result<ScheduleResult, ScheduleError> {
        let OptimalStretch { stretch, problem } = optimal_max_stretch(instance, self.backend)?;
        // Realise the optimum: compute a feasible allocation at (marginally
        // above) the optimal objective, then serialise it per site.  The
        // allocation is the plain feasibility solution — the paper's Offline
        // algorithm does not re-optimise the sum-stretch, which is exactly why
        // its sum-stretch column in Table 1 is mediocre.
        //
        // The slack must dominate both the bisection tolerance (1e-7 relative)
        // and the max-flow feasibility tolerance, otherwise an allocation
        // exactly at the bisection's answer can be judged infeasible.
        let slack = crate::deadline::certified_slack(stretch);
        let mut solver = ParametricDeadlineSolver::with_config(self.config);
        let plan = solver
            .feasibility_allocation(&problem, slack)
            .ok_or_else(|| {
                ScheduleError::Optimisation("allocation infeasible at the optimal stretch".into())
            })?;
        let sequences = site_sequences(&problem, &plan, PieceOrdering::Online);
        let execution = execute_sequences(&problem, &sequences, problem.now, f64::INFINITY);

        let mut completions = vec![f64::NAN; instance.num_jobs()];
        for (pending_idx, job) in problem.jobs.iter().enumerate() {
            let c = execution
                .completions
                .get(&pending_idx)
                .copied()
                .ok_or_else(|| {
                    ScheduleError::Optimisation(format!(
                        "job {} not completed by the serialised optimal plan",
                        job.job_id
                    ))
                })?;
            completions[job.job_id] = c;
        }
        Ok(ScheduleResult::from_completions(
            self.name(),
            instance,
            &completions,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::MctScheduler;
    use crate::list::ListScheduler;
    use stretch_platform::fixtures::small_platform;
    use stretch_workload::Job;

    fn instance(jobs: Vec<Job>) -> Instance {
        Instance::new(small_platform(), jobs)
    }

    #[test]
    fn single_job_optimum_matches_full_platform_speed() {
        let inst = instance(vec![Job::new(0, 0.0, 120.0, 0)]);
        let opt = optimal_max_stretch(&inst, OfflineBackend::Flow).unwrap();
        // Alone, the job takes 2 s on the 60 MB/s platform: stretch (in the
        // F/W unit) = 2/120.
        assert!((opt.stretch - 2.0 / 120.0).abs() < 1e-6);
        let r = OfflineScheduler::new().schedule(&inst).unwrap();
        // The realised schedule works at the optimum plus the allocation
        // slack (1e-4 relative), hence the 1e-3 margin.
        assert!((r.completion(0) - 2.0).abs() < 1e-3);
    }

    #[test]
    fn flow_and_lp_backends_agree() {
        let inst = instance(vec![
            Job::new(0, 0.0, 200.0, 0),
            Job::new(1, 1.0, 50.0, 1),
            Job::new(2, 2.0, 100.0, 0),
        ]);
        let flow = optimal_max_stretch(&inst, OfflineBackend::Flow).unwrap();
        let lp = optimal_max_stretch(&inst, OfflineBackend::Lp).unwrap();
        assert!(
            (flow.stretch - lp.stretch).abs() < 1e-3 * flow.stretch.max(1e-9),
            "flow {} vs lp {}",
            flow.stretch,
            lp.stretch
        );
    }

    #[test]
    fn offline_schedule_realises_the_optimal_max_stretch() {
        let inst = instance(vec![
            Job::new(0, 0.0, 300.0, 0),
            Job::new(1, 1.0, 60.0, 1),
            Job::new(2, 3.0, 120.0, 0),
            Job::new(3, 4.0, 30.0, 0),
        ]);
        let opt = optimal_max_stretch(&inst, OfflineBackend::Flow).unwrap();
        let r = OfflineScheduler::new().schedule(&inst).unwrap();
        // The realised schedule meets every deadline of the optimal objective,
        // so its max-stretch (converted to the same unit) matches the optimum
        // within tolerance.
        let aggregate = inst.platform.aggregate_speed();
        let realised = r.metrics.max_stretch / aggregate; // back to F/W units
        assert!(
            realised <= opt.stretch * (1.0 + 1e-3) + 1e-9,
            "realised {realised} vs optimal {}",
            opt.stretch
        );
    }

    #[test]
    fn offline_is_never_beaten_on_max_stretch() {
        let inst = instance(vec![
            Job::new(0, 0.0, 250.0, 0),
            Job::new(1, 0.5, 80.0, 1),
            Job::new(2, 1.0, 40.0, 0),
            Job::new(3, 2.0, 160.0, 1),
            Job::new(4, 5.0, 20.0, 0),
        ]);
        let offline = OfflineScheduler::new().schedule(&inst).unwrap();
        let heuristics: Vec<Box<dyn Scheduler>> = vec![
            Box::new(ListScheduler::fcfs()),
            Box::new(ListScheduler::srpt()),
            Box::new(ListScheduler::swrpt()),
            Box::new(MctScheduler::mct()),
            Box::new(MctScheduler::mct_div()),
        ];
        for h in heuristics {
            let r = h.schedule(&inst).unwrap();
            assert!(
                offline.metrics.max_stretch <= r.metrics.max_stretch * (1.0 + 5e-4) + 1e-9,
                "{} beat the optimal max-stretch: {} < {}",
                h.name(),
                r.metrics.max_stretch,
                offline.metrics.max_stretch
            );
        }
    }
}
