//! Exact single-processor preemptive scheduling (§4).
//!
//! Lemma 1 reduces the uniform divisible multi-machine model to one
//! preemptive processor, so all the theory of the paper is stated here.  This
//! module provides:
//!
//! * an exact event-driven simulator of preemptive list scheduling under any
//!   [`PriorityRule`] ([`simulate_priority`]);
//! * EDF schedulability of a deadline set ([`edf_feasible`]) and the derived
//!   off-line optimal max-stretch ([`optimal_max_stretch`]), used both on its
//!   own and as a cross-check of the multi-machine solver;
//! * helpers computing the §3 metrics of a single-processor schedule.

use crate::priority::{JobView, PriorityRule};
use stretch_metrics::{JobOutcome, ScheduleMetrics};
use stretch_workload::UniprocInstance;

/// Numerical tolerance on times.
const EPS: f64 = 1e-9;

/// Simulates preemptive list scheduling of `instance` under `rule`.
///
/// Priorities are re-evaluated at every event (release or completion), which
/// matches the behaviour of all the heuristics of §4 (they only preempt when
/// a new job arrives or the running job finishes).  `deadlines`, when given,
/// is consulted by the EDF rule; other rules ignore it.
///
/// Returns the completion time of each job, indexed by job id.
pub fn simulate_priority(
    instance: &UniprocInstance,
    rule: PriorityRule,
    deadlines: Option<&[f64]>,
) -> Vec<f64> {
    let n = instance.jobs.len();
    let mut remaining: Vec<f64> = instance.jobs.iter().map(|j| j.processing_time).collect();
    let mut completions = vec![f64::NAN; n];
    if n == 0 {
        return completions;
    }
    if let Some(d) = deadlines {
        assert_eq!(d.len(), n, "one deadline per job");
    }

    // Jobs are stored sorted by release date in `UniprocInstance`.
    let releases: Vec<f64> = instance.jobs.iter().map(|j| j.release).collect();
    let mut now = releases[0];
    let mut done = 0usize;

    while done < n {
        // Released, uncompleted jobs.
        let active: Vec<usize> = (0..n)
            .filter(|&j| releases[j] <= now + EPS && remaining[j] > EPS && completions[j].is_nan())
            .collect();
        // Next release strictly in the future.
        let next_release = releases
            .iter()
            .copied()
            .filter(|&r| r > now + EPS)
            .fold(f64::INFINITY, f64::min);

        if active.is_empty() {
            assert!(
                next_release.is_finite(),
                "no active job and no future release, yet {done}/{n} jobs done"
            );
            now = next_release;
            continue;
        }

        // Pick the highest-priority active job.
        let views: Vec<(usize, JobView)> = active
            .iter()
            .map(|&j| {
                (
                    j,
                    JobView {
                        release: instance.jobs[j].release,
                        total_work: instance.jobs[j].processing_time,
                        remaining_work: remaining[j],
                        deadline: deadlines.map(|d| d[j]),
                    },
                )
            })
            .collect();
        let chosen = rule.order(now, &views)[0];

        // Run it until it finishes or the next release occurs.
        let finish = now + remaining[chosen];
        let horizon = finish.min(next_release);
        remaining[chosen] -= horizon - now;
        now = horizon;
        if remaining[chosen] <= EPS {
            remaining[chosen] = 0.0;
            completions[chosen] = now;
            done += 1;
        }
    }
    completions
}

/// Simulates preemptive Earliest Deadline First and reports whether every job
/// met its deadline.  EDF is optimal for single-machine preemptive deadline
/// scheduling, so this is an exact feasibility test.
pub fn edf_feasible(instance: &UniprocInstance, deadlines: &[f64]) -> bool {
    let completions = simulate_priority(instance, PriorityRule::Edf, Some(deadlines));
    completions
        .iter()
        .zip(deadlines)
        .all(|(&c, &d)| c <= d + 1e-6)
}

/// The smallest max-stretch achievable on one preemptive processor.
///
/// Deadlines are `d_j(F) = r_j + F · p_j`; feasibility is monotone in `F`, so
/// a bisection bracketed by `[1, max-stretch of FCFS]` converges to the
/// optimum.  The returned value is exact to a relative tolerance of `1e-9`.
pub fn optimal_max_stretch(instance: &UniprocInstance) -> f64 {
    if instance.jobs.is_empty() {
        return 1.0;
    }
    // Upper bound: any valid schedule, e.g. FCFS.
    let fcfs = simulate_priority(instance, PriorityRule::Fcfs, None);
    let upper = max_stretch_of(instance, &fcfs).max(1.0);
    let mut lo = 1.0;
    let mut hi = upper;
    let deadlines_for =
        |f: f64| -> Vec<f64> { instance.jobs.iter().map(|j| j.deadline(f)).collect() };
    if edf_feasible(instance, &deadlines_for(lo)) {
        return lo;
    }
    debug_assert!(edf_feasible(instance, &deadlines_for(hi)));
    for _ in 0..200 {
        if (hi - lo) <= 1e-9 * hi.max(1.0) {
            break;
        }
        let mid = 0.5 * (lo + hi);
        if edf_feasible(instance, &deadlines_for(mid)) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi
}

/// Builds per-job outcomes from single-processor completion times, using the
/// job's own processing time as the stretch denominator (the single-processor
/// stretch definition of §3.1).
pub fn outcomes_of(instance: &UniprocInstance, completions: &[f64]) -> Vec<JobOutcome> {
    instance
        .jobs
        .iter()
        .zip(completions)
        .map(|(j, &c)| JobOutcome::new(j.id, j.release, j.work, j.processing_time, c))
        .collect()
}

/// §3 metrics of a single-processor schedule.
pub fn metrics_of(instance: &UniprocInstance, completions: &[f64]) -> ScheduleMetrics {
    ScheduleMetrics::from_outcomes(&outcomes_of(instance, completions))
}

/// Max-stretch of a single-processor schedule.
pub fn max_stretch_of(instance: &UniprocInstance, completions: &[f64]) -> f64 {
    metrics_of(instance, completions).max_stretch
}

/// Sum-stretch of a single-processor schedule.
pub fn sum_stretch_of(instance: &UniprocInstance, completions: &[f64]) -> f64 {
    metrics_of(instance, completions).sum_stretch
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst(jobs: &[(f64, f64)]) -> UniprocInstance {
        UniprocInstance::from_times(jobs)
    }

    #[test]
    fn fcfs_runs_jobs_in_arrival_order_without_preemption() {
        let i = inst(&[(0.0, 4.0), (1.0, 1.0), (2.0, 1.0)]);
        let c = simulate_priority(&i, PriorityRule::Fcfs, None);
        assert!((c[0] - 4.0).abs() < 1e-9);
        assert!((c[1] - 5.0).abs() < 1e-9);
        assert!((c[2] - 6.0).abs() < 1e-9);
    }

    #[test]
    fn srpt_preempts_long_job_for_short_one() {
        let i = inst(&[(0.0, 4.0), (1.0, 1.0)]);
        let c = simulate_priority(&i, PriorityRule::Srpt, None);
        // At t=1 the long job has 3 units left > 1, so the short job runs.
        assert!((c[1] - 2.0).abs() < 1e-9);
        assert!((c[0] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn srpt_minimises_sum_flow_against_other_rules() {
        let i = inst(&[(0.0, 3.0), (0.5, 1.0), (1.0, 2.0), (4.0, 0.5)]);
        let srpt = metrics_of(&i, &simulate_priority(&i, PriorityRule::Srpt, None));
        for rule in [PriorityRule::Fcfs, PriorityRule::Spt, PriorityRule::Swrpt] {
            let other = metrics_of(&i, &simulate_priority(&i, rule, None));
            assert!(
                srpt.sum_flow <= other.sum_flow + 1e-9,
                "SRPT sum-flow {} vs {} {}",
                srpt.sum_flow,
                rule.name(),
                other.sum_flow
            );
        }
    }

    #[test]
    fn fcfs_minimises_max_flow_against_other_rules() {
        let i = inst(&[(0.0, 3.0), (0.5, 1.0), (1.0, 2.0), (4.0, 0.5)]);
        let fcfs = metrics_of(&i, &simulate_priority(&i, PriorityRule::Fcfs, None));
        for rule in [PriorityRule::Srpt, PriorityRule::Spt, PriorityRule::Swrpt] {
            let other = metrics_of(&i, &simulate_priority(&i, rule, None));
            assert!(fcfs.max_flow <= other.max_flow + 1e-9);
        }
    }

    #[test]
    fn idle_period_is_skipped() {
        let i = inst(&[(0.0, 1.0), (10.0, 1.0)]);
        let c = simulate_priority(&i, PriorityRule::Srpt, None);
        assert!((c[0] - 1.0).abs() < 1e-9);
        assert!((c[1] - 11.0).abs() < 1e-9);
    }

    #[test]
    fn edf_feasibility_detects_tight_and_loose_deadline_sets() {
        let i = inst(&[(0.0, 2.0), (0.0, 2.0)]);
        assert!(edf_feasible(&i, &[2.0, 4.0]));
        assert!(edf_feasible(&i, &[4.0, 4.0]));
        assert!(!edf_feasible(&i, &[2.0, 3.0]));
    }

    #[test]
    fn optimal_max_stretch_single_job_is_one() {
        let i = inst(&[(5.0, 3.0)]);
        assert!((optimal_max_stretch(&i) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn optimal_max_stretch_two_identical_jobs() {
        // Two unit jobs released together: one must wait, optimal max-stretch 2.
        let i = inst(&[(0.0, 1.0), (0.0, 1.0)]);
        assert!((optimal_max_stretch(&i) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn optimal_max_stretch_never_exceeds_any_heuristic() {
        let i = inst(&[(0.0, 5.0), (1.0, 1.0), (1.5, 0.5), (2.0, 2.0), (8.0, 1.0)]);
        let opt = optimal_max_stretch(&i);
        for rule in [
            PriorityRule::Fcfs,
            PriorityRule::Srpt,
            PriorityRule::Spt,
            PriorityRule::Swrpt,
        ] {
            let c = simulate_priority(&i, rule, None);
            assert!(
                opt <= max_stretch_of(&i, &c) + 1e-6,
                "optimal {} vs {} {}",
                opt,
                rule.name(),
                max_stretch_of(&i, &c)
            );
        }
    }

    #[test]
    fn empty_instance_handled() {
        let i = inst(&[]);
        assert!(simulate_priority(&i, PriorityRule::Srpt, None).is_empty());
        assert_eq!(optimal_max_stretch(&i), 1.0);
    }
}
