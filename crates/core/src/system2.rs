//! The paper's System (2) as an explicit linear program.
//!
//! Given the optimal max-stretch `S*` (and therefore fixed deadlines and
//! epochal intervals), System (2) re-allocates the work so that, subject to
//! every deadline still being met, jobs finish "as early as possible on
//! average": it minimises `Σ_j Σ_t (Σ_i α⁽ᵗ⁾_{i,j}) · midpoint(I_t) / W_j`, a
//! rational relaxation of the sum-stretch.
//!
//! The production path solves this as a min-cost flow
//! ([`crate::deadline::DeadlineProblem::system2_allocation`]); the LP here is
//! the literal transcription of the paper and is used for cross-validation.

use crate::deadline::{AllocationPlan, DeadlineProblem, Piece};
use stretch_lp::problem::{Problem, Relation, Sense};
use stretch_lp::LinExpr;

/// Solves System (2) at the fixed objective `stretch` with the LP back-end.
///
/// Returns `None` when the deadlines induced by `stretch` cannot all be met.
pub fn solve_system2_lp(problem: &DeadlineProblem, stretch: f64) -> Option<AllocationPlan> {
    if problem.is_trivial() {
        return Some(AllocationPlan::default());
    }
    let intervals = problem.intervals(stretch);
    let mut lp = Problem::new(Sense::Minimize);
    let mut vars: Vec<(usize, usize, usize, usize)> = Vec::new(); // (var, site, job, interval)

    for (j, job) in problem.jobs.iter().enumerate() {
        let deadline = job.deadline(stretch);
        for (s, site) in problem.sites.sites.iter().enumerate() {
            if !site.hosts(job.databank) {
                continue;
            }
            for (t, &(start, end)) in intervals.iter().enumerate() {
                // Constraints (2a)/(2b): stay within the job's window.
                if job.ready.max(problem.now) <= start + 1e-9 && deadline >= end - 1e-9 {
                    let v = lp.add_var(format!("a_{s}_{j}_{t}"));
                    // Objective: fraction of the job × interval midpoint.
                    lp.set_objective_coeff(v, 0.5 * (start + end) / job.work);
                    vars.push((v, s, j, t));
                }
            }
        }
    }

    // Constraint (2c): interval capacity per site.
    for (s, site) in problem.sites.sites.iter().enumerate() {
        for (t, &(start, end)) in intervals.iter().enumerate() {
            let mut expr = LinExpr::new();
            let mut any = false;
            for &(v, vs, _, vt) in &vars {
                if vs == s && vt == t {
                    expr.add_term(v, 1.0);
                    any = true;
                }
            }
            if any {
                lp.add_constraint(expr, Relation::Le, site.speed * (end - start));
            }
        }
    }

    // Constraint (2d): all remaining work is allocated.
    for (j, job) in problem.jobs.iter().enumerate() {
        let mut expr = LinExpr::new();
        let mut any = false;
        for &(v, _, vj, _) in &vars {
            if vj == j {
                expr.add_term(v, 1.0);
                any = true;
            }
        }
        if !any {
            return None;
        }
        lp.add_constraint(expr, Relation::Eq, job.remaining);
    }

    let solution = lp.solve().ok()?;
    let pieces = vars
        .iter()
        .filter_map(|&(v, s, j, t)| {
            let work = solution.value(v);
            if work > 1e-9 {
                Some(Piece {
                    job_index: j,
                    job_id: problem.jobs[j].job_id,
                    site: s,
                    interval: t,
                    work,
                })
            } else {
                None
            }
        })
        .collect();
    Some(AllocationPlan { intervals, pieces })
}

/// Objective value of an allocation plan under the System-(2) cost
/// (sum over pieces of `work / W_j ×` interval midpoint).
pub fn system2_cost(problem: &DeadlineProblem, plan: &AllocationPlan) -> f64 {
    plan.pieces
        .iter()
        .map(|p| {
            let (start, end) = plan.intervals[p.interval];
            p.work / problem.jobs[p.job_index].work * 0.5 * (start + end)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deadline::PendingJob;
    use crate::sites::{Site, SiteView};

    fn sites() -> SiteView {
        SiteView {
            sites: vec![
                Site {
                    cluster: 0,
                    speed: 1.0,
                    hosted_databanks: vec![0],
                },
                Site {
                    cluster: 1,
                    speed: 2.0,
                    hosted_databanks: vec![0, 1],
                },
            ],
        }
    }

    fn job(id: usize, release: f64, work: f64, databank: usize) -> PendingJob {
        PendingJob {
            job_id: id,
            release,
            ready: release,
            work,
            remaining: work,
            databank,
        }
    }

    #[test]
    fn lp_and_flow_back_ends_agree_on_cost() {
        let cases: Vec<Vec<PendingJob>> = vec![
            vec![job(0, 0.0, 2.0, 0), job(1, 0.0, 1.0, 0)],
            vec![
                job(0, 0.0, 3.0, 1),
                job(1, 1.0, 1.0, 0),
                job(2, 2.0, 2.0, 0),
            ],
        ];
        for jobs in cases {
            let p = DeadlineProblem::new(jobs, sites(), 0.0);
            let f = p.min_feasible_stretch().unwrap() * 1.001;
            let flow_plan = p.system2_allocation(f).expect("flow feasible");
            let lp_plan = solve_system2_lp(&p, f).expect("lp feasible");
            let flow_cost = system2_cost(&p, &flow_plan);
            let lp_cost = system2_cost(&p, &lp_plan);
            assert!(
                (flow_cost - lp_cost).abs() < 1e-3 * flow_cost.max(1.0),
                "flow {flow_cost} vs lp {lp_cost}"
            );
            // Both ship all the work.
            for (j, job) in p.jobs.iter().enumerate() {
                assert!((flow_plan.work_of(j) - job.remaining).abs() < 1e-5);
                assert!((lp_plan.work_of(j) - job.remaining).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn infeasible_stretch_returns_none() {
        let p = DeadlineProblem::new(
            vec![job(0, 0.0, 1.0, 0), job(1, 0.0, 1.0, 0)],
            SiteView {
                sites: vec![Site {
                    cluster: 0,
                    speed: 1.0,
                    hosted_databanks: vec![0],
                }],
            },
            0.0,
        );
        assert!(solve_system2_lp(&p, 1.0).is_none());
        assert!(p.system2_allocation(1.0).is_none());
    }

    #[test]
    fn trivial_problem_gives_empty_plan() {
        let p = DeadlineProblem::new(vec![], sites(), 0.0);
        assert!(solve_system2_lp(&p, 1.0).unwrap().pieces.is_empty());
    }
}
