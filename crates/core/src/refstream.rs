//! The 3-cluster reference stream shared by benches, the perf-drift gate
//! and the detector regression tests.
//!
//! Three consumers replay the *same* deterministic workload — the
//! `scheduler_overhead` bench (which records the `engine/*` rows of
//! `BENCH_baseline.json`), the CI perf-drift gate
//! (`stretch_experiments::drift`, which re-measures those rows and must
//! run identical work for the ratios to compare like with like), and the
//! `monge` detector-verdict regression in
//! `crates/core/tests/backend_diff.rs`.  Keeping three hand-synced copies
//! of the generator constants and the event-replay bookkeeping invited
//! silent drift; this module is the single implementation.

use crate::deadline::{certified_slack, DeadlineProblem, PendingJob};
use crate::plan::{execute_sequences, site_sequences, PieceOrdering};
use crate::{ParametricDeadlineSolver, SiteView, SolverConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use stretch_platform::{PlatformConfig, PlatformGenerator};
use stretch_workload::{Instance, WorkloadConfig, WorkloadGenerator};

/// Draws the deterministic reference instance of roughly `target_jobs`
/// jobs on a `sites`-cluster platform (availability 0.6, density 1.5,
/// full-scan workload — the §5.3 bench constants).  Same `(sites,
/// databanks, target_jobs, seed)` ⇒ byte-identical instance; the bench
/// rows and the drift gate both use `(3, 3, 20, 3)`.
pub fn reference_instance(
    sites: usize,
    databanks: usize,
    target_jobs: usize,
    seed: u64,
) -> Instance {
    let mut rng = SmallRng::seed_from_u64(seed);
    let platform =
        PlatformGenerator::new(PlatformConfig::new(sites, databanks, 0.6)).generate(&mut rng);
    let probe = WorkloadGenerator::new(WorkloadConfig {
        density: 1.5,
        window: 1.0,
        scan_fraction: 1.0,
        ..Default::default()
    });
    let rate = probe.expected_job_count(&platform).max(1e-9);
    let generator = WorkloadGenerator::new(WorkloadConfig {
        density: 1.5,
        window: (target_jobs as f64 / rate).max(1e-3),
        scan_fraction: 1.0,
        ..Default::default()
    });
    generator.generate_instance(platform, &mut rng)
}

/// Replays the on-line loop once, capturing every per-event System-(2)
/// problem together with the slackened objective it is solved at — the
/// exact min-cost workload the backends compete on (the
/// `engine/system2-events/*` rows).
///
/// `config` selects the solver that *drives the replay* (whose plans
/// decide how remaining work evolves between events).  Degenerate optima
/// are backend-dependent, so different configurations may legitimately
/// capture different streams; the bench and the drift gate use the
/// process default ([`capture_system2_events`]), while tests wanting an
/// environment-independent stream pass an explicit configuration.
pub fn capture_system2_events_with(
    instance: &Instance,
    config: SolverConfig,
) -> Vec<(DeadlineProblem, f64)> {
    let sites = SiteView::of(instance);
    let mut remaining: Vec<f64> = instance.jobs.iter().map(|j| j.work).collect();
    let mut events: Vec<f64> = instance.jobs.iter().map(|j| j.release).collect();
    events.sort_by(|a, b| a.total_cmp(b));
    events.dedup_by(|a, b| (*a - *b).abs() <= 1e-12);
    let mut solver = ParametricDeadlineSolver::with_config(config);
    let mut captured = Vec::new();
    for (e, &now) in events.iter().enumerate() {
        let horizon = events.get(e + 1).copied().unwrap_or(f64::INFINITY);
        let pending: Vec<PendingJob> = instance
            .jobs
            .iter()
            .filter(|j| j.release <= now + 1e-12 && remaining[j.id] > 1e-9)
            .map(|j| PendingJob {
                job_id: j.id,
                release: j.release,
                ready: now,
                work: j.work,
                remaining: remaining[j.id],
                databank: j.databank,
            })
            .collect();
        if pending.is_empty() {
            continue;
        }
        let problem = DeadlineProblem::new(pending, sites.clone(), now);
        let best = solver.min_feasible_stretch(&problem).expect("feasible");
        let slack = certified_slack(best);
        captured.push((problem.clone(), slack));
        let plan = solver
            .system2_allocation(&problem, slack)
            .expect("feasible");
        let sequences = site_sequences(&problem, &plan, PieceOrdering::Online);
        let execution = execute_sequences(&problem, &sequences, now, horizon);
        for (pending_idx, job) in problem.jobs.iter().enumerate() {
            remaining[job.job_id] =
                (remaining[job.job_id] - execution.executed[pending_idx]).max(0.0);
            if execution.completions.contains_key(&pending_idx) {
                remaining[job.job_id] = 0.0;
            }
        }
    }
    captured
}

/// [`capture_system2_events_with`] under the process-default
/// [`SolverConfig`] — what the bench and the drift gate run.
pub fn capture_system2_events(instance: &Instance) -> Vec<(DeadlineProblem, f64)> {
    capture_system2_events_with(instance, SolverConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_instance_is_deterministic_and_nonempty() {
        let a = reference_instance(3, 3, 12, 1);
        let b = reference_instance(3, 3, 12, 1);
        assert_eq!(a.num_jobs(), b.num_jobs());
        assert!(a.num_jobs() > 0);
    }

    #[test]
    fn capture_yields_one_problem_per_busy_event() {
        let instance = reference_instance(3, 3, 10, 7);
        let events = capture_system2_events_with(&instance, SolverConfig::primal_dual());
        assert!(!events.is_empty());
        for (problem, slack) in &events {
            assert!(!problem.jobs.is_empty());
            assert!(slack.is_finite() && *slack >= 0.0);
        }
    }
}
