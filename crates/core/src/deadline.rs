//! Deadline-scheduling machinery shared by the off-line optimal solver
//! (§4.3.1) and the on-line heuristics (§4.3.2).
//!
//! Looking for a schedule of max-stretch at most `F` is equivalent to asking
//! every job `J_j` to finish before the deadline `d_j(F) = r_j + F · W_j`.
//! Once `F` is fixed, the *epochal times* (ready times and deadlines) cut the
//! time axis into intervals on which the paper's Systems (1) and (2) are
//! written.  With jobs divisible and sites collapsed per Lemma 1, the
//! resulting problems are transportation problems, solved here with
//! `stretch-flow`; the LP formulations of [`crate::system1`] and
//! [`crate::system2`] are kept for fidelity and cross-validation.

use crate::parametric::ParametricDeadlineSolver;
use crate::sites::SiteView;
use stretch_flow::{
    FlowWorkspace, MinCostBackend, PrimalDualBackend, TransportInstance, TransportSolution,
};

/// Relative tolerance used when bisecting on the objective `F`.
pub const STRETCH_TOL: f64 = 1e-7;

// ---------------------------------------------------------------------------
// The numerical-tolerance family.
//
// Every epsilon below used to be an ad-hoc literal scattered through this
// file; they are named (and related) here so paper-scale magnitudes (release
// dates ~1e3 s, works ~1e3 MB, stretches spanning 1e-2…1e2) meet one
// consistent hierarchy:
//
//     WORK_EPS  =  MILESTONE_DEDUP_RTOL  «  EPOCHAL_DEDUP_RTOL
//               =  INTERVAL_SLACK_RTOL   «  STRETCH_TOL
//
// The *_RTOL values are relative (scaled by `|x|.max(1.0)` at the use
// site); WORK_EPS is absolute, far below the smallest meaningful amount of
// work (databanks are ≥ 10 MB).  EPOCHAL_DEDUP_RTOL and
// INTERVAL_SLACK_RTOL are deliberately the same value *and the same
// units*: whenever the dedup merges a job's ready time into a slightly
// earlier epochal time, the membership slack must re-admit the job into
// the interval starting there, at any clock magnitude.  STRETCH_TOL — the
// objective-search tolerance — must dominate them all, otherwise the
// search can terminate on a value whose epochal structure is still
// numerically ambiguous.
// ---------------------------------------------------------------------------

/// Relative tolerance for deduplicating milestone values of `F`
/// (§4.3.1): two milestones closer than this are one candidate.
pub const MILESTONE_DEDUP_RTOL: f64 = 1e-12;

/// Relative tolerance for deduplicating epochal times (ready times and
/// deadlines): coarser than [`MILESTONE_DEDUP_RTOL`] because epochal times
/// feed interval widths, where near-zero gaps create degenerate
/// transportation bins.
pub const EPOCHAL_DEDUP_RTOL: f64 = 1e-9;

/// Absolute work threshold (MB) below which a piece, or a job's remaining
/// work, is treated as zero.
pub const WORK_EPS: f64 = 1e-12;

/// Relative slack for interval-membership tests when routing work into
/// `(site, interval)` bins: a job may use an interval whose start precedes
/// its ready time (or whose end overshoots its deadline) by up to
/// `INTERVAL_SLACK_RTOL · |t|.max(1.0)`.  Must be at least
/// [`EPOCHAL_DEDUP_RTOL`]: the dedup may move a ready time *backwards* by
/// that relative amount, and the job must still be admitted into the
/// interval starting at the merged epoch.
pub const INTERVAL_SLACK_RTOL: f64 = 1e-9;

/// The objective an allocation is solved at, given the optimal max-stretch
/// `best` returned by the bisection/Newton search.
///
/// The slack must dominate both the search tolerance ([`STRETCH_TOL`],
/// relative) and the flow feasibility tolerance, otherwise an allocation at
/// the search's answer can be judged infeasible by the tighter-toleranced
/// min-cost solve.  Every consumer of a computed optimum (the on-line loop,
/// the off-line realisation, the benches and the differential tests) must
/// use this one formula so they solve the same instances.
pub fn certified_slack(best: f64) -> f64 {
    best * (1.0 + 1e-4) + 1e-9
}

/// A job still needing work, as seen by the deadline-scheduling problems.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PendingJob {
    /// Job id in the instance.
    pub job_id: usize,
    /// Original release date `r_j` (enters the deadline formula).
    pub release: f64,
    /// Earliest time the remaining work may execute (`max(r_j, now)` for
    /// on-line schedulers, `r_j` off-line).
    pub ready: f64,
    /// Original size `W_j` (enters the deadline formula).
    pub work: f64,
    /// Remaining work to schedule.
    pub remaining: f64,
    /// Target databank (eligibility).
    pub databank: usize,
}

impl PendingJob {
    /// Deadline under max-stretch objective `F`.
    pub fn deadline(&self, stretch: f64) -> f64 {
        self.release + stretch * self.work
    }
}

/// A work piece of the allocation produced by System (2): `work` units of
/// `job_id` assigned to `site` within interval `interval`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Piece {
    /// Index into the pending-job list.
    pub job_index: usize,
    /// Job id in the instance.
    pub job_id: usize,
    /// Site index (cluster).
    pub site: usize,
    /// Index into [`AllocationPlan::intervals`].
    pub interval: usize,
    /// Amount of work (MB).
    pub work: f64,
}

/// The full allocation of remaining work over sites and epochal intervals.
#[derive(Clone, Debug, Default)]
pub struct AllocationPlan {
    /// Epochal intervals `[start, end)`, in increasing order.
    pub intervals: Vec<(f64, f64)>,
    /// Work pieces; several pieces may refer to the same `(job, site,
    /// interval)` triple (they are simply summed by consumers).
    pub pieces: Vec<Piece>,
}

/// Precomputed per-job views of an [`AllocationPlan`].
///
/// [`AllocationPlan::work_of`] and the `completion_interval*` lookups are
/// `O(pieces)` linear scans; the serialisation step calls them inside
/// `O(n log n)` sort comparators, turning every scheduling decision into
/// `O(pieces · n log n)`.  Building this index once per plan makes each
/// comparator lookup `O(1)`.
#[derive(Clone, Debug)]
pub struct PlanIndex {
    num_sites: usize,
    /// Total work assigned to each job.
    work: Vec<f64>,
    /// Last interval in which each job receives work, over all sites.
    completion: Vec<Option<usize>>,
    /// Last interval in which each job receives work on each site
    /// (row-major `job × site`).
    completion_on_site: Vec<Option<usize>>,
}

impl PlanIndex {
    /// Total work assigned to one job (see [`AllocationPlan::work_of`]).
    pub fn work_of(&self, job_index: usize) -> f64 {
        self.work[job_index]
    }

    /// Completion interval of one job over all sites (see
    /// [`AllocationPlan::completion_interval`]).
    pub fn completion_interval(&self, job_index: usize) -> Option<usize> {
        self.completion[job_index]
    }

    /// Completion interval of one job on one site (see
    /// [`AllocationPlan::completion_interval_on_site`]).
    pub fn completion_interval_on_site(&self, job_index: usize, site: usize) -> Option<usize> {
        self.completion_on_site[job_index * self.num_sites + site]
    }
}

impl AllocationPlan {
    /// Builds the per-job piece index in one pass over the pieces.
    pub fn index(&self, num_jobs: usize, num_sites: usize) -> PlanIndex {
        let mut index = PlanIndex {
            num_sites,
            work: vec![0.0; num_jobs],
            completion: vec![None; num_jobs],
            completion_on_site: vec![None; num_jobs * num_sites],
        };
        for p in &self.pieces {
            index.work[p.job_index] += p.work;
            if p.work > WORK_EPS {
                let all = &mut index.completion[p.job_index];
                *all = Some(all.map_or(p.interval, |i| i.max(p.interval)));
                let on_site = &mut index.completion_on_site[p.job_index * num_sites + p.site];
                *on_site = Some(on_site.map_or(p.interval, |i| i.max(p.interval)));
            }
        }
        index
    }

    /// Assembles a plan from a transportation solution over `site ×
    /// interval` bins (the common post-processing of the System-(1)/(2)
    /// solves).
    pub fn from_transport(
        problem: &DeadlineProblem,
        intervals: Vec<(f64, f64)>,
        solution: &TransportSolution,
    ) -> AllocationPlan {
        let num_intervals = intervals.len();
        let pieces = solution
            .allocations
            .iter()
            .map(|&(job_index, bin, work)| Piece {
                job_index,
                job_id: problem.jobs[job_index].job_id,
                site: bin / num_intervals,
                interval: bin % num_intervals,
                work,
            })
            .collect();
        AllocationPlan { intervals, pieces }
    }

    /// Total work assigned to one job across all pieces.
    pub fn work_of(&self, job_index: usize) -> f64 {
        self.pieces
            .iter()
            .filter(|p| p.job_index == job_index)
            .map(|p| p.work)
            .sum()
    }

    /// Index of the last interval in which `job_index` receives work (over
    /// all sites), if any.
    pub fn completion_interval(&self, job_index: usize) -> Option<usize> {
        self.pieces
            .iter()
            .filter(|p| p.job_index == job_index && p.work > WORK_EPS)
            .map(|p| p.interval)
            .max()
    }

    /// Index of the last interval in which `job_index` receives work on
    /// `site`, if any.
    pub fn completion_interval_on_site(&self, job_index: usize, site: usize) -> Option<usize> {
        self.pieces
            .iter()
            .filter(|p| p.job_index == job_index && p.site == site && p.work > WORK_EPS)
            .map(|p| p.interval)
            .max()
    }
}

/// A deadline-scheduling / max-stretch-minimisation problem at a given time.
#[derive(Clone, Debug)]
pub struct DeadlineProblem {
    /// Jobs with remaining work.
    pub jobs: Vec<PendingJob>,
    /// Site-level platform view.
    pub sites: SiteView,
    /// Current time: no work may be scheduled before it.
    pub now: f64,
}

impl DeadlineProblem {
    /// Creates a problem; jobs with no remaining work are dropped.
    pub fn new(jobs: Vec<PendingJob>, sites: SiteView, now: f64) -> Self {
        let jobs = jobs
            .into_iter()
            .filter(|j| j.remaining > WORK_EPS)
            .collect();
        DeadlineProblem { jobs, sites, now }
    }

    /// `true` when no work remains to be scheduled.
    pub fn is_trivial(&self) -> bool {
        self.jobs.is_empty()
    }

    /// The milestone values of `F`: candidate points where the relative order
    /// of ready times and deadlines changes (§4.3.1).  Sorted, deduplicated,
    /// strictly positive.
    pub fn milestones(&self) -> Vec<f64> {
        let mut ms = Vec::new();
        for j in &self.jobs {
            for k in &self.jobs {
                // Deadline of j meets the ready time of k.
                let f = (k.ready - j.release) / j.work;
                if f > 0.0 && f.is_finite() {
                    ms.push(f);
                }
                // Deadline of j meets deadline of k.
                if (j.work - k.work).abs() > WORK_EPS {
                    let f = (k.release - j.release) / (j.work - k.work);
                    if f > 0.0 && f.is_finite() {
                        ms.push(f);
                    }
                }
            }
        }
        ms.sort_by(|a, b| a.total_cmp(b));
        ms.dedup_by(|a, b| (*a - *b).abs() <= MILESTONE_DEDUP_RTOL * b.abs().max(1.0));
        ms
    }

    /// The epochal times for a fixed objective `F`: `now`, every ready time
    /// and every deadline, clamped to `[now, ∞)`, sorted and deduplicated.
    pub fn epochal_times(&self, stretch: f64) -> Vec<f64> {
        let mut times = Vec::new();
        self.epochal_times_into(stretch, &mut times);
        times
    }

    /// [`Self::epochal_times`] filling a caller-held buffer — the
    /// allocation-free variant for the incremental per-event path, identical
    /// fill (same values, same sort, same dedup) by construction.
    pub fn epochal_times_into(&self, stretch: f64, times: &mut Vec<f64>) {
        times.clear();
        times.push(self.now);
        for j in &self.jobs {
            times.push(j.ready.max(self.now));
            times.push(j.deadline(stretch).max(self.now));
        }
        times.sort_by(|a, b| a.total_cmp(b));
        times.dedup_by(|a, b| (*a - *b).abs() <= EPOCHAL_DEDUP_RTOL * b.abs().max(1.0));
    }

    /// The epochal intervals `[t_k, t_{k+1})` for a fixed objective `F`.
    pub fn intervals(&self, stretch: f64) -> Vec<(f64, f64)> {
        let times = self.epochal_times(stretch);
        times.windows(2).map(|w| (w[0], w[1])).collect()
    }

    /// Builds the transportation instance expressing deadline feasibility for
    /// a fixed `F` (the flow form of System (1)): jobs ship their remaining
    /// work into `(site, interval)` bins.
    ///
    /// Route costs are set by `cost`, a function of the interval `(start,
    /// end)` and of the job index; pass `|_, _| 0.0` for a pure feasibility
    /// check or the System-(2) cost for the refined allocation.
    pub fn transport(
        &self,
        stretch: f64,
        cost: impl Fn(usize, (f64, f64)) -> f64,
    ) -> (TransportInstance, Vec<(f64, f64)>) {
        let mut t = TransportInstance::new(0, 0);
        let mut intervals = Vec::new();
        let mut times = Vec::new();
        self.transport_into(stretch, cost, &mut t, &mut intervals, &mut times);
        (t, intervals)
    }

    /// [`Self::transport`] filling a caller-held instance and buffers — the
    /// allocation-free variant for the incremental per-event path.
    ///
    /// This is the single fill sequence both paths share (the from-scratch
    /// [`Self::transport`] delegates here with fresh buffers): same epochal
    /// times, same capacity loop, same admissibility slacks, same route
    /// declaration order — which is what makes the incremental System-(2)
    /// solve bit-identical to the rebuild one by construction.  `times` is
    /// pure scratch; `t` keeps any stable keys it carried (see
    /// [`TransportInstance::reset`]).
    pub fn transport_into(
        &self,
        stretch: f64,
        cost: impl Fn(usize, (f64, f64)) -> f64,
        t: &mut TransportInstance,
        intervals: &mut Vec<(f64, f64)>,
        times: &mut Vec<f64>,
    ) {
        self.epochal_times_into(stretch, times);
        intervals.clear();
        intervals.extend(times.windows(2).map(|w| (w[0], w[1])));
        let num_sites = self.sites.len();
        t.reset(self.jobs.len(), num_sites * intervals.len());
        for (j, job) in self.jobs.iter().enumerate() {
            t.set_demand(j, job.remaining);
        }
        for (s, site) in self.sites.sites.iter().enumerate() {
            for (i, &(start, end)) in intervals.iter().enumerate() {
                let bin = s * intervals.len() + i;
                t.set_capacity(bin, site.speed * (end - start));
            }
        }
        for (j, job) in self.jobs.iter().enumerate() {
            let deadline = job.deadline(stretch);
            for (s, site) in self.sites.sites.iter().enumerate() {
                if !site.hosts(job.databank) {
                    continue;
                }
                for (i, &(start, end)) in intervals.iter().enumerate() {
                    let start_slack = INTERVAL_SLACK_RTOL * start.abs().max(1.0);
                    let end_slack = INTERVAL_SLACK_RTOL * end.abs().max(1.0);
                    if job.ready.max(self.now) <= start + start_slack && deadline >= end - end_slack
                    {
                        let bin = s * intervals.len() + i;
                        t.add_route(j, bin, cost(j, (start, end)));
                    }
                }
            }
        }
    }

    /// `true` when a schedule with max-stretch at most `F` exists.
    pub fn feasible(&self, stretch: f64) -> bool {
        if self.is_trivial() {
            return true;
        }
        let (t, _) = self.transport(stretch, |_, _| 0.0);
        t.is_feasible()
    }

    /// A lower bound on the achievable max-stretch: every job needs at least
    /// `remaining / (speed of its eligible sites)` seconds starting from its
    /// ready time.
    pub fn stretch_lower_bound(&self) -> f64 {
        self.jobs
            .iter()
            .map(|j| {
                let speed = self.sites.speed_for(j.databank);
                if speed <= 0.0 {
                    return f64::INFINITY;
                }
                let earliest_completion = j.ready.max(self.now) + j.remaining / speed;
                (earliest_completion - j.release) / j.work
            })
            .fold(0.0, f64::max)
    }

    /// A *certified* upper bound on the achievable max-stretch: serialise
    /// the pending jobs in ready order, each running alone on every site
    /// hosting its databank.  That is a valid schedule, so its max-stretch
    /// is always feasible — no exponential search for an upper bound is
    /// needed.  Returns `None` when some job has no eligible site.
    pub fn serialized_upper_bound(&self) -> Option<f64> {
        let mut order: Vec<&PendingJob> = self.jobs.iter().collect();
        order.sort_by(|a, b| a.ready.total_cmp(&b.ready));
        let mut clock = self.now;
        let mut bound = 0.0f64;
        for job in order {
            let speed = self.sites.speed_for(job.databank);
            if speed <= 0.0 {
                return None;
            }
            clock = clock.max(job.ready) + job.remaining / speed;
            bound = bound.max((clock - job.release) / job.work);
        }
        Some(bound)
    }

    /// The smallest achievable max-stretch.  Returns `None` when some job
    /// cannot be served by any site (no finite stretch is feasible).
    ///
    /// Delegates to the parametric engine
    /// ([`crate::parametric::ParametricDeadlineSolver`]): milestone-bracket
    /// search with frozen-topology, warm-started probes.  Callers solving
    /// many problems (the on-line schedulers) should hold one solver and
    /// feed it every problem instead, so scratch memory is reused.
    pub fn min_feasible_stretch(&self) -> Option<f64> {
        ParametricDeadlineSolver::new().min_feasible_stretch(self)
    }

    /// The from-scratch reference bisection: every probe rebuilds the
    /// transportation instance and solves an independent max-flow.
    ///
    /// Kept (and cross-checked by the property tests) as the semantic
    /// reference for [`Self::min_feasible_stretch`]; it shares the certified
    /// upper bound of [`Self::serialized_upper_bound`] but none of the
    /// parametric machinery.
    pub fn min_feasible_stretch_reference(&self) -> Option<f64> {
        if self.is_trivial() {
            return Some(0.0);
        }
        let lo_bound = self.stretch_lower_bound();
        if !lo_bound.is_finite() {
            return None;
        }
        if self.feasible(lo_bound) {
            return Some(lo_bound);
        }
        // Certified upper bound; the loop only absorbs numerical slack.
        let mut hi = self.serialized_upper_bound()?.max(lo_bound) * (1.0 + 1e-9);
        let mut widenings = 0;
        while !self.feasible(hi) {
            hi *= if widenings < 8 { 1.0 + 1e-3 } else { 2.0 };
            widenings += 1;
            if widenings > 48 {
                return None;
            }
        }
        let mut lo = lo_bound;
        while (hi - lo) > STRETCH_TOL * hi.max(1.0) {
            let mid = 0.5 * (lo + hi);
            if self.feasible(mid) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Some(hi)
    }

    /// The paper's milestone-based search (§4.3.1).
    ///
    /// The parametric engine *is* the milestone algorithm (binary-search the
    /// sorted milestones for the first feasible one, then refine inside the
    /// bracket), so this now shares the implementation of
    /// [`Self::min_feasible_stretch`]; the name is kept to mirror the
    /// paper's presentation and for the LP cross-validation tests.
    pub fn min_feasible_stretch_milestones(&self) -> Option<f64> {
        ParametricDeadlineSolver::new().min_feasible_stretch(self)
    }

    /// Solves System (2) at objective `F`: ship every remaining unit of work,
    /// minimising the sum over jobs of (interval midpoint) × (fraction of the
    /// job placed there) — the rational relaxation of the sum-stretch used by
    /// the paper's on-line heuristics.  Returns `None` when `F` is
    /// infeasible.
    pub fn system2_allocation(&self, stretch: f64) -> Option<AllocationPlan> {
        self.system2_allocation_with(stretch, &mut FlowWorkspace::new())
    }

    /// [`Self::system2_allocation`] reusing caller scratch.
    pub fn system2_allocation_with(
        &self,
        stretch: f64,
        workspace: &mut FlowWorkspace,
    ) -> Option<AllocationPlan> {
        self.system2_allocation_with_backend(stretch, &mut PrimalDualBackend, workspace)
    }

    /// [`Self::system2_allocation`] on an explicit min-cost backend.
    ///
    /// This is where the [`stretch_flow::MinCostBackend`] abstraction meets
    /// the scheduler: the System-(2) objective is the only nonzero-cost
    /// transportation solve on the hot path, so the backend choice of
    /// [`crate::SolverConfig`] lands here.
    ///
    /// The instance is labelled with **stable identities** — jobs by their
    /// instance-wide [`PendingJob::job_id`] (unchanged however many events a
    /// job survives), bins by `(site, interval position)` — and those labels
    /// reach the backend as a [`MinCostBackend::warm_hint`].  A
    /// basis-carrying backend (the network simplex) uses them to remap its
    /// previous event's basis onto this event's network; stateless backends
    /// ignore them.  Either way the allocation is bit-identical: the hint
    /// only changes how many pivots the solve needs.
    pub fn system2_allocation_with_backend(
        &self,
        stretch: f64,
        backend: &mut dyn MinCostBackend,
        workspace: &mut FlowWorkspace,
    ) -> Option<AllocationPlan> {
        if self.is_trivial() {
            return Some(AllocationPlan::default());
        }
        let (mut t, intervals) = self.transport(stretch, |job_idx, (start, end)| {
            0.5 * (start + end) / self.jobs[job_idx].work
        });
        let num_intervals = intervals.len();
        let source_keys = self.jobs.iter().map(|j| j.job_id as u64).collect();
        // Bins are keyed by (site, position-from-now); tagged into a range
        // disjoint from any realistic job id.
        let bin_keys = (0..self.sites.len() * num_intervals)
            .map(|bin| {
                (1u64 << 48) | (((bin / num_intervals) as u64) << 24) | (bin % num_intervals) as u64
            })
            .collect();
        t.set_stable_keys(source_keys, bin_keys);
        let solution = t.solve_min_cost_with_backend(backend, workspace)?;
        Some(AllocationPlan::from_transport(self, intervals, &solution))
    }

    /// The System-(1) feasibility allocation at objective `stretch`: ship
    /// every remaining unit of work under the deadlines, with no cost
    /// refinement.  This is what the paper's `Offline` scheduler serialises,
    /// and the baseline of the Figure 3 comparison.  Returns `None` when
    /// `stretch` is infeasible.
    pub fn feasibility_allocation_with(
        &self,
        stretch: f64,
        workspace: &mut FlowWorkspace,
    ) -> Option<AllocationPlan> {
        if self.is_trivial() {
            return Some(AllocationPlan::default());
        }
        let (t, intervals) = self.transport(stretch, |_, _| 0.0);
        let solution = t.solve_min_cost_with(workspace)?;
        Some(AllocationPlan::from_transport(self, intervals, &solution))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sites::{Site, SiteView};

    fn one_site(speed: f64) -> SiteView {
        SiteView {
            sites: vec![Site {
                cluster: 0,
                speed,
                hosted_databanks: vec![0, 1],
            }],
        }
    }

    fn two_sites() -> SiteView {
        SiteView {
            sites: vec![
                Site {
                    cluster: 0,
                    speed: 1.0,
                    hosted_databanks: vec![0],
                },
                Site {
                    cluster: 1,
                    speed: 2.0,
                    hosted_databanks: vec![0, 1],
                },
            ],
        }
    }

    fn job(id: usize, release: f64, work: f64, databank: usize) -> PendingJob {
        PendingJob {
            job_id: id,
            release,
            ready: release,
            work,
            remaining: work,
            databank,
        }
    }

    #[test]
    fn single_job_min_stretch_is_one_on_unit_speed_site() {
        let p = DeadlineProblem::new(vec![job(0, 0.0, 4.0, 0)], one_site(1.0), 0.0);
        let s = p.min_feasible_stretch().unwrap();
        assert!((s - 1.0).abs() < 1e-5, "stretch {s}");
    }

    #[test]
    fn two_simultaneous_jobs_share_the_processor() {
        // Two unit jobs at t=0 on a unit-speed site: both finish by 2, so the
        // minimal max-stretch is 2.
        let p = DeadlineProblem::new(
            vec![job(0, 0.0, 1.0, 0), job(1, 0.0, 1.0, 0)],
            one_site(1.0),
            0.0,
        );
        let s = p.min_feasible_stretch().unwrap();
        assert!((s - 2.0).abs() < 1e-4, "stretch {s}");
    }

    #[test]
    fn milestone_search_matches_bisection() {
        let p = DeadlineProblem::new(
            vec![
                job(0, 0.0, 3.0, 0),
                job(1, 1.0, 1.0, 0),
                job(2, 2.0, 2.0, 1),
            ],
            two_sites(),
            0.0,
        );
        let a = p.min_feasible_stretch().unwrap();
        let b = p.min_feasible_stretch_milestones().unwrap();
        assert!((a - b).abs() < 1e-4, "bisection {a} vs milestones {b}");
    }

    #[test]
    fn restricted_availability_raises_the_optimum() {
        // Databank 1 only on site 1 (speed 2): a databank-1 job cannot use
        // site 0, so its earliest completion is bounded by site 1 alone.
        let jobs = vec![job(0, 0.0, 4.0, 1)];
        let restricted = DeadlineProblem::new(jobs.clone(), two_sites(), 0.0);
        let s = restricted.min_feasible_stretch().unwrap();
        // Alone on site 1 (speed 2): completes at 2, stretch = 2/4 = 0.5.
        assert!((s - 0.5).abs() < 1e-5, "stretch {s}");
    }

    #[test]
    fn infeasible_when_no_site_hosts_the_databank() {
        let sites = SiteView {
            sites: vec![Site {
                cluster: 0,
                speed: 1.0,
                hosted_databanks: vec![0],
            }],
        };
        let p = DeadlineProblem::new(vec![job(0, 0.0, 1.0, 7)], sites, 0.0);
        assert_eq!(p.min_feasible_stretch(), None);
    }

    #[test]
    fn feasibility_is_monotone_in_stretch() {
        let p = DeadlineProblem::new(
            vec![
                job(0, 0.0, 2.0, 0),
                job(1, 0.5, 1.0, 0),
                job(2, 1.0, 3.0, 1),
            ],
            two_sites(),
            0.0,
        );
        let opt = p.min_feasible_stretch().unwrap();
        assert!(!p.feasible(opt * 0.9));
        assert!(p.feasible(opt * 1.1));
        assert!(p.feasible(opt * 4.0));
    }

    #[test]
    fn system2_allocation_ships_all_remaining_work() {
        let p = DeadlineProblem::new(
            vec![job(0, 0.0, 2.0, 0), job(1, 0.0, 1.0, 0)],
            two_sites(),
            0.0,
        );
        let f = p.min_feasible_stretch().unwrap();
        let plan = p.system2_allocation(f * 1.01).expect("feasible");
        assert!((plan.work_of(0) - 2.0).abs() < 1e-5);
        assert!((plan.work_of(1) - 1.0).abs() < 1e-5);
        // Pieces respect eligibility: databank 0 may use both sites.
        for piece in &plan.pieces {
            assert!(piece.site < 2);
        }
        // Completion intervals exist for both jobs.
        assert!(plan.completion_interval(0).is_some());
        assert!(plan.completion_interval(1).is_some());
    }

    #[test]
    fn system2_prefers_early_intervals() {
        // One job, plenty of time: all its work should land in the earliest
        // feasible interval(s), not be spread gratuitously late.
        let p = DeadlineProblem::new(vec![job(0, 0.0, 1.0, 0)], one_site(1.0), 0.0);
        let plan = p.system2_allocation(10.0).expect("feasible");
        let last = plan.completion_interval(0).unwrap();
        // With deadline far away there are only two epochal times (ready and
        // deadline), i.e. a single interval; the point is that the work is
        // assigned, entirely, as early as possible.
        assert!((plan.work_of(0) - 1.0).abs() < 1e-6);
        assert_eq!(last, plan.completion_interval(0).unwrap());
    }

    #[test]
    fn milestones_are_positive_sorted_and_deduplicated() {
        let p = DeadlineProblem::new(
            vec![
                job(0, 0.0, 2.0, 0),
                job(1, 3.0, 1.0, 0),
                job(2, 5.0, 2.0, 0),
            ],
            one_site(1.0),
            0.0,
        );
        let ms = p.milestones();
        assert!(!ms.is_empty());
        assert!(ms.iter().all(|&m| m > 0.0));
        for w in ms.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn near_duplicate_milestones_dedup_at_paper_scale_magnitudes() {
        // Paper-scale magnitudes: release dates across a 15-minute window,
        // works of thousands of MB, milestone values in the thousands.  Two
        // milestones differing by less than MILESTONE_DEDUP_RTOL·|m| must
        // collapse into one candidate; a clearly distinct one must survive.
        let jobs = vec![
            job(0, 0.0, 1.0, 0),
            // Ready times produce milestones f = k.ready / 1.0 for job 0.
            job(1, 10_000.0, 2.0, 0),
            job(2, 10_000.0 * (1.0 + 1e-13), 3.0, 0),
            job(3, 10_001.0, 5.0, 0),
        ];
        let p = DeadlineProblem::new(jobs, one_site(1.0), 0.0);
        let ms = p.milestones();
        let near_10k = ms.iter().filter(|&&m| (m - 10_000.0).abs() < 0.5).count();
        assert_eq!(near_10k, 1, "near-duplicates must dedup: {ms:?}");
        assert!(
            ms.iter().any(|&m| (m - 10_001.0).abs() < 0.5),
            "distinct milestones must survive: {ms:?}"
        );
        // The dedup hierarchy: consecutive milestones are separated by more
        // than the dedup tolerance at their own magnitude.
        for w in ms.windows(2) {
            assert!(w[1] - w[0] > MILESTONE_DEDUP_RTOL * w[1].abs().max(1.0));
        }
    }

    #[test]
    fn near_duplicate_epochal_times_dedup_at_large_clocks() {
        // Simulated clocks far from zero (hour-long traces): ready times
        // closer than EPOCHAL_DEDUP_RTOL·t must merge into one epochal
        // time, otherwise the transport gets degenerate zero-width bins.
        let t0 = 1.0e6;
        let jobs = vec![
            PendingJob {
                job_id: 0,
                release: t0,
                ready: t0,
                work: 100.0,
                remaining: 100.0,
                databank: 0,
            },
            PendingJob {
                job_id: 1,
                release: t0 + 1.0e-4,
                ready: t0 + 1.0e-4,
                work: 100.0,
                remaining: 100.0,
                databank: 0,
            },
        ];
        let p = DeadlineProblem::new(jobs, one_site(1.0), t0);
        let times = p.epochal_times(1.0);
        let near_t0 = times.iter().filter(|&&t| (t - t0).abs() < 1.0).count();
        assert_eq!(
            near_t0, 1,
            "near-duplicate ready times must merge: {times:?}"
        );
        // And the resulting intervals all have positive width.
        for (start, end) in p.intervals(1.0) {
            assert!(end > start, "degenerate interval [{start}, {end})");
        }
        // The solve still goes through at this magnitude.
        let s = p.min_feasible_stretch().expect("feasible");
        assert!(s.is_finite() && s > 0.0);
    }

    #[test]
    fn interval_membership_survives_epochal_dedup_at_large_clocks() {
        // Translation invariance of stretch: the same two-job problem
        // solved at clock 0 and at clock 1e6 must give (nearly) the same
        // optimum.  At 1e6 the relative epochal dedup merges the ready
        // times (1e-4 apart < 1e-9·1e6); the membership slack must then
        // re-admit the later job into the interval starting at the merged
        // epoch, or it loses that interval's entire capacity and the
        // optimum inflates.
        let problem_at = |t0: f64| {
            let jobs = (0..2)
                .map(|k| PendingJob {
                    job_id: k,
                    release: t0 + k as f64 * 1.0e-4,
                    ready: t0 + k as f64 * 1.0e-4,
                    work: 100.0,
                    remaining: 100.0,
                    databank: 0,
                })
                .collect();
            DeadlineProblem::new(jobs, one_site(1.0), t0)
        };
        let at_zero = problem_at(0.0).min_feasible_stretch().expect("feasible");
        let large = problem_at(1.0e6);
        let at_large = large.min_feasible_stretch().expect("feasible");
        assert!(
            (at_zero - at_large).abs() <= 1e-4 * at_zero,
            "stretch must be translation-invariant: {at_zero} at t=0 vs {at_large} at t=1e6"
        );
        // The transport-based paths must agree: with the absolute slack this
        // returned false/None (the merged-epoch interval rejected job 1, so
        // a comfortably feasible stretch was judged infeasible).
        assert!(
            large.feasible(at_zero * 1.05),
            "transport membership lost a job"
        );
        let reference = large
            .min_feasible_stretch_reference()
            .expect("reference bisection must agree the problem is feasible");
        assert!(
            (reference - at_zero).abs() <= 1e-4 * at_zero,
            "reference {reference}"
        );
        // And the System-(2) allocation at the optimum ships all the work.
        let plan = large
            .system2_allocation(certified_slack(at_large))
            .expect("allocation at the certified objective");
        assert!((plan.work_of(0) - 100.0).abs() < 1e-5);
        assert!((plan.work_of(1) - 100.0).abs() < 1e-5);
    }

    #[test]
    fn trivial_problem_shortcuts() {
        let p = DeadlineProblem::new(vec![], one_site(1.0), 0.0);
        assert!(p.is_trivial());
        assert_eq!(p.min_feasible_stretch(), Some(0.0));
        assert!(p.feasible(0.1));
        assert!(p.system2_allocation(1.0).unwrap().pieces.is_empty());
    }
}
