//! # stretch-core
//!
//! The heart of the reproduction of *Minimizing the stretch when scheduling
//! flows of biological requests* (Legrand, Su, Vivien — SPAA 2006): every
//! scheduling algorithm discussed in the paper, implemented for the divisible
//! load / restricted availability model of the GriPPS application.
//!
//! ## Schedulers
//!
//! | Scheduler | Paper section | Summary |
//! |---|---|---|
//! | [`ListScheduler`] (FCFS) | §4.1 | first come first served — optimal for max-flow |
//! | [`ListScheduler`] (SRPT) | §4.1–4.2 | shortest remaining processing time — optimal for sum-flow, 2-competitive for sum-stretch |
//! | [`ListScheduler`] (SPT / SWPT) | §4.2 | shortest (weighted) processing time |
//! | [`ListScheduler`] (SWRPT) | §4.2 | shortest weighted remaining processing time |
//! | [`ListScheduler`] (Bender02) | §4.3.2 | pseudo-stretch priority, `O(√Δ)`-competitive |
//! | [`MctScheduler`] | §5.3 | minimum completion time, with or without divisibility (the GriPPS production policy) |
//! | [`OfflineScheduler`] | §4.3.1 | optimal max-stretch via milestones + deadline scheduling |
//! | [`OnlineScheduler`] | §4.3.2 | the paper's on-line heuristics: `Online`, `Online-EDF`, `Online-EGDF`, plus the non-optimized variant used in Figure 3 |
//! | [`Bender98Scheduler`] | §4.3.2 | Bender, Chakrabarti, Muthukrishnan (1998): recompute the off-line optimum at each arrival, then EDF with a `√Δ` expansion factor |
//!
//! All of them implement the [`Scheduler`] trait and return comparable
//! [`ScheduleResult`]s.
//!
//! ## Single-processor theory module
//!
//! The [`uniproc`] module contains an exact single-machine preemptive
//! simulator and the adversarial instances of Theorems 1 and 2, which are
//! stated on one processor; the equivalence with the divisible multi-machine
//! model is Lemma 1, implemented in `stretch-workload`.

pub mod adversarial;
pub mod bender;
pub mod deadline;
pub mod greedy;
pub mod list;
pub mod offline;
pub mod online;
pub mod plan;
pub mod priority;
pub mod scheduler;
pub mod sites;
pub mod system1;
pub mod system2;
pub mod uniproc;

pub use bender::Bender98Scheduler;
pub use greedy::MctScheduler;
pub use list::ListScheduler;
pub use offline::{OfflineBackend, OfflineScheduler, OptimalStretch};
pub use online::{OnlineScheduler, OnlineVariant};
pub use priority::PriorityRule;
pub use scheduler::{ScheduleError, ScheduleResult, Scheduler};
pub use sites::SiteView;
