//! # stretch-core
//!
//! The heart of the reproduction of *Minimizing the stretch when scheduling
//! flows of biological requests* (Legrand, Su, Vivien — SPAA 2006): every
//! scheduling algorithm discussed in the paper, implemented for the divisible
//! load / restricted availability model of the GriPPS application.
//!
//! ## Schedulers
//!
//! | Scheduler | Paper section | Summary |
//! |---|---|---|
//! | [`ListScheduler`] (FCFS) | §4.1 | first come first served — optimal for max-flow |
//! | [`ListScheduler`] (SRPT) | §4.1–4.2 | shortest remaining processing time — optimal for sum-flow, 2-competitive for sum-stretch |
//! | [`ListScheduler`] (SPT / SWPT) | §4.2 | shortest (weighted) processing time |
//! | [`ListScheduler`] (SWRPT) | §4.2 | shortest weighted remaining processing time |
//! | [`ListScheduler`] (Bender02) | §4.3.2 | pseudo-stretch priority, `O(√Δ)`-competitive |
//! | [`MctScheduler`] | §5.3 | minimum completion time, with or without divisibility (the GriPPS production policy) |
//! | [`OfflineScheduler`] | §4.3.1 | optimal max-stretch via milestones + deadline scheduling |
//! | [`OnlineScheduler`] | §4.3.2 | the paper's on-line heuristics: `Online`, `Online-EDF`, `Online-EGDF`, plus the non-optimized variant used in Figure 3 |
//! | [`Bender98Scheduler`] | §4.3.2 | Bender, Chakrabarti, Muthukrishnan (1998): recompute the off-line optimum at each arrival, then EDF with a `√Δ` expansion factor |
//!
//! All of them implement the [`Scheduler`] trait and return comparable
//! [`ScheduleResult`]s.
//!
//! ## Single-processor theory module
//!
//! The [`uniproc`] module contains an exact single-machine preemptive
//! simulator and the adversarial instances of Theorems 1 and 2, which are
//! stated on one processor; the equivalence with the divisible multi-machine
//! model is Lemma 1, implemented in `stretch-workload`.
//!
//! ## Performance
//!
//! Every optimisation-based scheduler bottoms out in
//! [`deadline::DeadlineProblem::min_feasible_stretch`], and the on-line
//! schedulers re-run it (plus a System-(2) re-allocation) at **every
//! arrival**.  The hot path is organised around the paper's own milestone
//! observation (§4.3.1): between two milestones of the objective `F`, the
//! epochal-interval *structure* is invariant — only interval endpoints move,
//! linearly in `F`.  The [`parametric`] module exploits this end to end:
//!
//! * the transportation network of a deadline problem is built **once**
//!   and probed at any `F` by re-sorting the symbolic `a + b·F` times and
//!   rebinding bin/route capacities in place, warm-starting max-flow from
//!   the previous residual flow (no per-probe allocation or rebuild);
//! * the minimum feasible stretch is found by **Newton iteration on
//!   parametric minimum cuts** (each infeasible probe certifies, via its
//!   cut, the infeasibility of every smaller `F` up to the next milestone),
//!   which replaces ~25 bisection probes with a handful of max-flow runs;
//! * the feasible upper bound is **certified** by serialising the pending
//!   work ([`deadline::DeadlineProblem::serialized_upper_bound`]) instead of
//!   searched for by blind doubling;
//! * allocation post-processing indexes each plan once
//!   ([`deadline::AllocationPlan::index`]) so the serialisation comparators
//!   are `O(1)` instead of `O(pieces)`.
//!
//! Long-running schedulers hold one [`ParametricDeadlineSolver`] and feed it
//! every problem, so flow scratch ([`stretch_flow::FlowWorkspace`]) is
//! reused across events.  The `scheduler_overhead` bench records the effect
//! in `BENCH_baseline.json`; on the reference 3-cluster workload the
//! `Online`/`Online-EDF` per-event loop runs ≥3× faster than the
//! from-scratch engine it replaced (kept verbatim in the bench as
//! `engine/online-loop/seed` for future comparisons).
//!
//! The remaining per-event cost is the System-(2) min-cost solve, which runs
//! on a pluggable [`stretch_flow::MinCostBackend`] selected by
//! [`SolverConfig`]: the primal-dual reference kernel or a warm-startable
//! network simplex (`STRETCH_MINCOST_BACKEND=simplex`).  Both backends are
//! cross-checked on generated workloads by the differential-oracle suite in
//! `tests/backend_diff.rs`.
//!
//! Across *events*, the solver is incremental by default
//! (`STRETCH_INCREMENTAL`, see [`delta`]): the parametric structure
//! persists from event to event, arrivals and completions are spliced into
//! the symbolic epochal-time multiset instead of rebuilding it, and the
//! per-event System-(2) solve runs out of a persistent arena — all
//! bit-identical to the rebuild path by construction.

pub mod adversarial;
pub mod bender;
pub mod config;
pub mod deadline;
pub mod delta;
pub mod greedy;
pub mod list;
pub mod offline;
pub mod online;
pub mod parametric;
pub mod plan;
pub mod priority;
pub mod refstream;
pub mod scheduler;
pub mod sites;
pub mod system1;
pub mod system2;
pub mod uniproc;

pub use bender::Bender98Scheduler;
pub use config::SolverConfig;
pub use greedy::MctScheduler;
pub use list::ListScheduler;
pub use offline::{OfflineBackend, OfflineScheduler, OptimalStretch};
pub use online::{OnlineScheduler, OnlineVariant};
pub use parametric::ParametricDeadlineSolver;
pub use priority::PriorityRule;
pub use scheduler::{ScheduleError, ScheduleResult, Scheduler};
pub use sites::SiteView;
pub use stretch_flow::BackendKind;
