//! Cluster-level ("site") view of a platform.
//!
//! Inside one cluster every processor has the same speed and the same
//! databank replicas, and jobs are divisible, so the ten processors of a site
//! behave exactly like one processor of ten times the speed (this is Lemma 1
//! applied within the cluster).  Working at site granularity shrinks the
//! interval/allocation problems of Systems (1) and (2) by an order of
//! magnitude without changing any completion time, so the off-line and
//! on-line LP-based schedulers all use this view.

use stretch_platform::Platform;
use stretch_workload::Instance;

/// One site: a cluster collapsed into a single equivalent processor.
#[derive(Clone, Debug, PartialEq)]
pub struct Site {
    /// Cluster id this site corresponds to.
    pub cluster: usize,
    /// Aggregate speed of the cluster (sum of its processors' speeds), MB/s.
    pub speed: f64,
    /// Databanks hosted by the cluster.
    pub hosted_databanks: Vec<usize>,
}

impl Site {
    /// `true` when the site can serve requests against `databank`.
    pub fn hosts(&self, databank: usize) -> bool {
        self.hosted_databanks.contains(&databank)
    }
}

/// The site-level view of an instance's platform.
#[derive(Clone, Debug, PartialEq)]
pub struct SiteView {
    /// All sites, in cluster order.
    pub sites: Vec<Site>,
}

impl SiteView {
    /// Builds the site view of an instance.
    pub fn of(instance: &Instance) -> Self {
        Self::of_platform(&instance.platform)
    }

    /// Builds the site view of a platform directly — the entry point for
    /// long-lived services (`stretch-serve`) that hold a platform but no
    /// batch [`Instance`].
    pub fn of_platform(platform: &Platform) -> Self {
        let sites = platform
            .clusters
            .iter()
            .map(|c| Site {
                cluster: c.id,
                speed: c
                    .processors
                    .iter()
                    .map(|&p| platform.processors[p].speed)
                    .sum(),
                hosted_databanks: c.hosted_databanks.clone(),
            })
            .collect();
        SiteView { sites }
    }

    /// Number of sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// `true` when the view has no site.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Sites able to serve `databank`.
    pub fn eligible_sites(&self, databank: usize) -> Vec<usize> {
        self.sites
            .iter()
            .enumerate()
            .filter(|(_, s)| s.hosts(databank))
            .map(|(i, _)| i)
            .collect()
    }

    /// Aggregate speed of every site (the whole platform).
    pub fn total_speed(&self) -> f64 {
        self.sites.iter().map(|s| s.speed).sum()
    }

    /// Aggregate speed of the sites able to serve `databank`.
    pub fn speed_for(&self, databank: usize) -> f64 {
        self.sites
            .iter()
            .filter(|s| s.hosts(databank))
            .map(|s| s.speed)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stretch_platform::fixtures::small_platform;
    use stretch_workload::Job;

    fn instance() -> Instance {
        Instance::new(
            small_platform(),
            vec![Job::new(0, 0.0, 100.0, 0), Job::new(1, 0.0, 200.0, 1)],
        )
    }

    #[test]
    fn sites_aggregate_cluster_speeds() {
        let view = SiteView::of(&instance());
        assert_eq!(view.len(), 2);
        assert!((view.sites[0].speed - 20.0).abs() < 1e-12);
        assert!((view.sites[1].speed - 40.0).abs() < 1e-12);
        assert!((view.total_speed() - 60.0).abs() < 1e-12);
    }

    #[test]
    fn eligibility_follows_replication() {
        let view = SiteView::of(&instance());
        assert_eq!(view.eligible_sites(0), vec![0, 1]);
        assert_eq!(view.eligible_sites(1), vec![1]);
        assert!((view.speed_for(1) - 40.0).abs() < 1e-12);
    }
}
