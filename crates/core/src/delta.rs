//! Delta updates for the persistent parametric structure.
//!
//! The on-line schedulers solve one [`DeadlineProblem`] per event, and
//! consecutive events differ by a *handful* of jobs: an arrival adds one
//! pending job, a completion removes one, and every surviving job keeps its
//! identity (`job_id`), release date and size.  Yet the rebuild path
//! reconstructs the whole System-(2) parametric structure — the symbolic
//! epochal times, the job-contiguous route table and the flow network —
//! from scratch at every event.
//!
//! This module makes the structure **persistent under delta updates**, the
//! "carry the epochal structure" rung of the ROADMAP:
//!
//! * [`EpochSplicer`] maintains the multiset of symbolic time lines
//!   `a + b·F` across events.  On an arrival it splices the job's two lines
//!   (ready time, deadline line) *into* the sorted line set; on a completion
//!   it splices them *out*; epoch boundaries shared by several jobs (the
//!   common `ready == now` line of the on-line problems) merge and split by
//!   reference count, locally, in `O(log k)` per touched line.  The
//!   surviving lines never move, so the sorted order — and with it the
//!   interval layout that PR 4's `BasisRemap` stable keys are built on —
//!   is preserved without a global re-sort.
//! * [`System2Arena`] holds the per-event System-(2) transportation solve's
//!   entire memory — the [`TransportInstance`], the interval and key
//!   buffers, and the [`stretch_flow::TransportArena`] with the flow
//!   network — so the hot per-event solve becomes allocation-free at steady
//!   state.
//!
//! # Bit-identity by construction
//!
//! The incremental path must return **exactly** what the rebuild path
//! returns — not approximately: the serve layer diffs recovery replays
//! bit for bit, and the `STRETCH_INCREMENTAL={0,1}` CI matrix runs every
//! golden fixture in both modes.  The design therefore never re-derives a
//! quantity along a different arithmetic route.  The spliced line multiset
//! is provably equal to the freshly sorted-and-deduplicated line vector
//! (same comparator, same exact-identity merge rule), and everything
//! downstream — interval binding, route generation, capacity rebinding,
//! the Newton iteration itself — runs the *same fill code* over persistent
//! buffers that the rebuild path runs over fresh ones.  "Re-running Newton
//! from the previous landing" is realised the same way warm starts are:
//! the previous landing's flow pattern is replayed as the first probe's
//! residual seed, changing how much augmentation work the probe does and
//! never its verdict.
//!
//! # When the splice bails to a rebuild
//!
//! The exact-identity merge rule of the rebuild path (`Vec::dedup` by
//! `PartialEq` on `(a, b)` pairs) and the splicer's ordered multiset agree
//! whenever floating-point equality coincides with bitwise identity.  Two
//! representable cases break that coincidence, and the splicer refuses to
//! splice rather than risk a silent divergence:
//!
//! * a line component is **NaN** (`NaN != NaN`, so `dedup` never merges
//!   NaN lines while an order-based multiset would);
//! * a line component is **negative zero** (`-0.0 == 0.0` merges under
//!   `dedup`, keeping whichever representative sorts first — a distinction
//!   a refcounted multiset cannot maintain under removals).
//!
//! Both are degenerate inputs the schedulers never produce (job times are
//! validated non-negative finite), but correctness must not depend on
//! that: on detection the splicer falls back to the rebuild path's own
//! sort-and-dedup construction for that event (and stays unprimed until a
//! clean event re-seeds it).  A duplicated `job_id` within one problem —
//! impossible through the scheduler, representable through the raw API —
//! likewise forces a rebuild, since the per-job registry keys on the id.
//! [`DeltaUpdate::rebuilt`] reports which path ran;
//! [`EpochSplicer::splices`] and [`EpochSplicer::rebuilds`] count both
//! across the stream.

use crate::deadline::{AllocationPlan, DeadlineProblem};
use stretch_flow::{FlowWorkspace, MinCostBackend, TransportArena, TransportInstance};

/// Summary of one [`EpochSplicer::apply`] reconciliation.
///
/// The counts describe the *delta* between the previous event's pending set
/// and the new one, as seen by the splicer: most on-line events are one
/// arrival or one departure plus the shared `now`/ready line moving.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeltaUpdate {
    /// Jobs spliced in (present now, absent at the previous event).
    pub arrived: usize,
    /// Jobs spliced out (absent now, present at the previous event).
    pub departed: usize,
    /// Line moves of surviving jobs (the effective ready time `max(ready,
    /// now)` advances with `now`; the shared line moves once per job
    /// referencing it).
    pub moved: usize,
    /// `true` when the splicer rebuilt the line set from scratch instead of
    /// splicing (first event, degenerate values, duplicate job ids).
    pub rebuilt: bool,
}

/// Counters of how a solver's event stream was served; see
/// [`crate::ParametricDeadlineSolver::incremental_stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// Events served by an incremental splice.
    pub splices: u64,
    /// Events served by a full rebuild (always at least 1: the first).
    pub rebuilds: u64,
}

/// Per-job registry entry: the two symbolic lines the job contributes.
#[derive(Clone, Copy, Debug)]
struct JobLines {
    /// Effective ready line `(max(ready, now), 0)`.
    ready: (f64, f64),
    /// Deadline line `(release, work)`.
    deadline: (f64, f64),
    /// Event stamp of the last [`EpochSplicer::apply`] that saw this job.
    stamp: u64,
}

/// The persistent multiset of symbolic epochal time lines, spliced from
/// event to event.
///
/// One splicer lives inside each incremental
/// [`crate::ParametricDeadlineSolver`]; [`EpochSplicer::apply`] reconciles
/// it with the next event's [`DeadlineProblem`] and
/// [`EpochSplicer::times`] then yields exactly the deduplicated sorted
/// line vector the rebuild path would construct — bit for bit.
///
/// ```
/// use stretch_core::deadline::{DeadlineProblem, PendingJob};
/// use stretch_core::delta::EpochSplicer;
/// use stretch_core::sites::{Site, SiteView};
///
/// let sites = SiteView {
///     sites: vec![Site { cluster: 0, speed: 1.0, hosted_databanks: vec![0] }],
/// };
/// let job = |id: usize, release: f64, work: f64| PendingJob {
///     job_id: id,
///     release,
///     ready: release,
///     work,
///     remaining: work,
///     databank: 0,
/// };
/// let mut splicer = EpochSplicer::new();
///
/// // Event 1: two jobs pending at t = 0 — the first event is a build.
/// let e1 = DeadlineProblem::new(vec![job(0, 0.0, 2.0), job(1, 0.0, 1.0)], sites.clone(), 0.0);
/// assert!(splicer.apply(&e1).rebuilt);
///
/// // Event 2 at t = 0.5: job 1 completed, job 2 arrived.  Job 1's lines
/// // are spliced out, job 2's in, and the shared ready line moves with
/// // `now` — no rebuild, no global re-sort.
/// let e2 = DeadlineProblem::new(vec![job(0, 0.0, 2.0), job(2, 0.5, 1.0)], sites.clone(), 0.5);
/// let delta = splicer.apply(&e2);
/// assert!(!delta.rebuilt);
/// assert_eq!((delta.arrived, delta.departed), (1, 1));
///
/// // The spliced line set equals the from-scratch construction exactly.
/// let mut fresh = vec![(0.5, 0.0)];
/// for j in &e2.jobs {
///     fresh.push((j.ready.max(0.5), 0.0));
///     fresh.push((j.release, j.work));
/// }
/// fresh.sort_by(|x, y| x.0.total_cmp(&y.0).then(x.1.total_cmp(&y.1)));
/// fresh.dedup();
/// assert_eq!(splicer.times(), &fresh[..]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct EpochSplicer {
    /// Sorted unique lines with reference counts (a line shared by several
    /// jobs — the on-line problems' common ready time — is one entry).
    lines: Vec<((f64, f64), u32)>,
    /// Per-job contributed lines, sorted by `job_id`.
    registry: Vec<(usize, JobLines)>,
    /// The problem-level `(now, 0)` line of the previous event.
    now_line: (f64, f64),
    /// Flattened [`Self::lines`] keys, refreshed per apply.
    unique: Vec<(f64, f64)>,
    /// Duplicate-id detection scratch.
    id_scratch: Vec<usize>,
    /// Monotone event counter, stamped into registry entries.
    stamp: u64,
    /// `false` until a clean event seeded the multiset and registry.
    primed: bool,
    splices: u64,
    rebuilds: u64,
}

/// The comparator of the rebuild path's line sort, shared verbatim.
fn line_cmp(a: &(f64, f64), b: &(f64, f64)) -> std::cmp::Ordering {
    a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1))
}

/// `true` when a component would break the dedup/multiset equivalence (see
/// the module docs): NaN never merges under `PartialEq`, negative zero
/// merges with positive zero.
fn degenerate(value: f64) -> bool {
    value.is_nan() || (value == 0.0 && value.is_sign_negative())
}

fn degenerate_line(line: (f64, f64)) -> bool {
    degenerate(line.0) || degenerate(line.1)
}

fn inc_line(lines: &mut Vec<((f64, f64), u32)>, line: (f64, f64)) {
    match lines.binary_search_by(|(l, _)| line_cmp(l, &line)) {
        Ok(i) => lines[i].1 += 1,
        Err(i) => lines.insert(i, (line, 1)),
    }
}

fn dec_line(lines: &mut Vec<((f64, f64), u32)>, line: (f64, f64)) {
    match lines.binary_search_by(|(l, _)| line_cmp(l, &line)) {
        Ok(i) => {
            lines[i].1 -= 1;
            if lines[i].1 == 0 {
                lines.remove(i);
            }
        }
        Err(_) => unreachable!("splice multiset lost line {line:?}"),
    }
}

impl EpochSplicer {
    /// An empty splicer; the first [`EpochSplicer::apply`] is a build.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reconciles the persistent line multiset with `problem` and reports
    /// the delta.  After this call [`EpochSplicer::times`] is the exact
    /// symbolic-time vector of `problem` (the rebuild path's
    /// sort-and-dedup result), however the reconciliation ran.
    pub fn apply(&mut self, problem: &DeadlineProblem) -> DeltaUpdate {
        self.stamp += 1;
        let now_line = (problem.now, 0.0);
        let clean = !degenerate_line(now_line)
            && !problem.jobs.iter().any(|j| {
                degenerate_line((j.ready.max(problem.now), 0.0))
                    || degenerate_line((j.release, j.work))
            })
            && self.unique_ids(problem);
        if !clean {
            // Degenerate values or duplicate ids: serve this event through
            // the rebuild path's own construction and stay unprimed.
            self.primed = false;
            self.lines.clear();
            self.registry.clear();
            self.rebuilds += 1;
            self.rebuild_unique_by_sort(problem);
            return DeltaUpdate {
                arrived: problem.jobs.len(),
                departed: 0,
                moved: 0,
                rebuilt: true,
            };
        }
        if !self.primed {
            // First clean event (or first after a degenerate one): seed the
            // multiset and registry from scratch.
            self.lines.clear();
            self.registry.clear();
            self.now_line = now_line;
            inc_line(&mut self.lines, now_line);
            for job in &problem.jobs {
                let entry = JobLines {
                    ready: (job.ready.max(problem.now), 0.0),
                    deadline: (job.release, job.work),
                    stamp: self.stamp,
                };
                inc_line(&mut self.lines, entry.ready);
                inc_line(&mut self.lines, entry.deadline);
                let at = self
                    .registry
                    .binary_search_by_key(&job.job_id, |e| e.0)
                    .expect_err("ids are unique on the clean path");
                self.registry.insert(at, (job.job_id, entry));
            }
            self.primed = true;
            self.rebuilds += 1;
            self.refresh_unique();
            return DeltaUpdate {
                arrived: problem.jobs.len(),
                departed: 0,
                moved: 0,
                rebuilt: true,
            };
        }
        // The incremental splice proper.
        let mut delta = DeltaUpdate::default();
        if now_line != self.now_line {
            dec_line(&mut self.lines, self.now_line);
            inc_line(&mut self.lines, now_line);
            self.now_line = now_line;
        }
        for job in &problem.jobs {
            let ready = (job.ready.max(problem.now), 0.0);
            let deadline = (job.release, job.work);
            match self.registry.binary_search_by_key(&job.job_id, |e| e.0) {
                Ok(i) => {
                    let entry = &mut self.registry[i].1;
                    entry.stamp = self.stamp;
                    if entry.ready != ready {
                        dec_line(&mut self.lines, entry.ready);
                        inc_line(&mut self.lines, ready);
                        entry.ready = ready;
                        delta.moved += 1;
                    }
                    if entry.deadline != deadline {
                        // A reused id with a different identity: treated as
                        // departure + arrival of the deadline line.
                        dec_line(&mut self.lines, entry.deadline);
                        inc_line(&mut self.lines, deadline);
                        entry.deadline = deadline;
                        delta.moved += 1;
                    }
                }
                Err(i) => {
                    inc_line(&mut self.lines, ready);
                    inc_line(&mut self.lines, deadline);
                    self.registry.insert(
                        i,
                        (
                            job.job_id,
                            JobLines {
                                ready,
                                deadline,
                                stamp: self.stamp,
                            },
                        ),
                    );
                    delta.arrived += 1;
                }
            }
        }
        let stamp = self.stamp;
        let lines = &mut self.lines;
        self.registry.retain(|&(_, entry)| {
            if entry.stamp == stamp {
                true
            } else {
                dec_line(lines, entry.ready);
                dec_line(lines, entry.deadline);
                delta.departed += 1;
                false
            }
        });
        self.splices += 1;
        self.refresh_unique();
        delta
    }

    /// The current symbolic times `(a, b)` — sorted, deduplicated by exact
    /// identity, equal bit for bit to the rebuild path's construction for
    /// the problem last [`EpochSplicer::apply`]ed.
    pub fn times(&self) -> &[(f64, f64)] {
        &self.unique
    }

    /// Events served by an incremental splice so far.
    pub fn splices(&self) -> u64 {
        self.splices
    }

    /// Events served by a full rebuild so far (the first event always is).
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// `true` when every `job_id` occurs at most once in `problem`.
    fn unique_ids(&mut self, problem: &DeadlineProblem) -> bool {
        self.id_scratch.clear();
        self.id_scratch
            .extend(problem.jobs.iter().map(|j| j.job_id));
        self.id_scratch.sort_unstable();
        self.id_scratch.windows(2).all(|w| w[0] != w[1])
    }

    /// Fills [`Self::unique`] by the rebuild path's own sort-and-dedup —
    /// the fallback that stays exact even for degenerate values.
    fn rebuild_unique_by_sort(&mut self, problem: &DeadlineProblem) {
        self.unique.clear();
        self.unique.reserve(2 * problem.jobs.len() + 1);
        self.unique.push((problem.now, 0.0));
        for job in &problem.jobs {
            self.unique.push((job.ready.max(problem.now), 0.0));
            self.unique.push((job.release, job.work));
        }
        self.unique.sort_by(line_cmp);
        self.unique.dedup();
    }

    /// Flattens the multiset keys into [`Self::unique`].
    fn refresh_unique(&mut self) {
        self.unique.clear();
        self.unique.extend(self.lines.iter().map(|&(line, _)| line));
    }
}

/// Persistent memory of the per-event System-(2) min-cost solve.
///
/// One arena lives inside each incremental
/// [`crate::ParametricDeadlineSolver`]; [`System2Arena::solve`] fills the
/// held [`TransportInstance`] through
/// [`DeadlineProblem::transport_into`] (the *same* fill sequence the
/// rebuild path runs) and solves it through the held
/// [`stretch_flow::TransportArena`], so a steady stream of events runs
/// the entire per-event solve without allocating — which is what the
/// `engine/system2-events/*-incremental` bench rows measure against their
/// `-warm` counterparts.
#[derive(Debug)]
pub struct System2Arena {
    instance: TransportInstance,
    intervals: Vec<(f64, f64)>,
    times: Vec<f64>,
    source_keys: Vec<u64>,
    bin_keys: Vec<u64>,
    arena: TransportArena,
}

impl Default for System2Arena {
    fn default() -> Self {
        System2Arena {
            instance: TransportInstance::new(0, 0),
            intervals: Vec::new(),
            times: Vec::new(),
            source_keys: Vec::new(),
            bin_keys: Vec::new(),
            arena: TransportArena::new(),
        }
    }
}

impl System2Arena {
    /// An empty arena; buffers grow on first use and are reused afterwards.
    pub fn new() -> Self {
        Self::default()
    }

    /// Solves System (2) at objective `stretch` into the persistent
    /// buffers; bit-identical to
    /// [`DeadlineProblem::system2_allocation_with_backend`] by
    /// construction (same fill, same keys, same backend call — see the
    /// module docs).
    pub fn solve(
        &mut self,
        problem: &DeadlineProblem,
        stretch: f64,
        backend: &mut dyn MinCostBackend,
        workspace: &mut FlowWorkspace,
    ) -> Option<AllocationPlan> {
        if problem.is_trivial() {
            return Some(AllocationPlan::default());
        }
        problem.transport_into(
            stretch,
            |job_idx, (start, end)| 0.5 * (start + end) / problem.jobs[job_idx].work,
            &mut self.instance,
            &mut self.intervals,
            &mut self.times,
        );
        let num_intervals = self.intervals.len();
        self.source_keys.clear();
        self.source_keys
            .extend(problem.jobs.iter().map(|j| j.job_id as u64));
        // Bins are keyed by (site, position-from-now); tagged into a range
        // disjoint from any realistic job id — the same key scheme as the
        // rebuild path, so `BasisRemap` sees identical identities.
        self.bin_keys.clear();
        self.bin_keys
            .extend((0..problem.sites.len() * num_intervals).map(|bin| {
                (1u64 << 48) | (((bin / num_intervals) as u64) << 24) | (bin % num_intervals) as u64
            }));
        self.instance
            .set_stable_keys_from(&self.source_keys, &self.bin_keys);
        let solution = self
            .instance
            .solve_min_cost_in(backend, workspace, &mut self.arena)?;
        Some(AllocationPlan::from_transport(
            problem,
            self.intervals.clone(),
            &solution,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deadline::PendingJob;
    use crate::sites::{Site, SiteView};

    fn sites() -> SiteView {
        SiteView {
            sites: vec![
                Site {
                    cluster: 0,
                    speed: 1.0,
                    hosted_databanks: vec![0],
                },
                Site {
                    cluster: 1,
                    speed: 2.0,
                    hosted_databanks: vec![0, 1],
                },
            ],
        }
    }

    fn job(id: usize, release: f64, work: f64, databank: usize) -> PendingJob {
        PendingJob {
            job_id: id,
            release,
            ready: release,
            work,
            remaining: work,
            databank,
        }
    }

    /// The rebuild path's construction, verbatim.
    fn fresh_times(problem: &DeadlineProblem) -> Vec<(f64, f64)> {
        let mut times = vec![(problem.now, 0.0)];
        for j in &problem.jobs {
            times.push((j.ready.max(problem.now), 0.0));
            times.push((j.release, j.work));
        }
        times.sort_by(|x, y| x.0.total_cmp(&y.0).then(x.1.total_cmp(&y.1)));
        times.dedup();
        times
    }

    fn bits(times: &[(f64, f64)]) -> Vec<(u64, u64)> {
        times
            .iter()
            .map(|t| (t.0.to_bits(), t.1.to_bits()))
            .collect()
    }

    #[test]
    fn splice_tracks_an_event_stream_exactly() {
        let mut splicer = EpochSplicer::new();
        // Arrivals, a completion, a shared-ready move, a shrink to one job,
        // then drain to empty — every step compared bitwise.
        let events = [
            DeadlineProblem::new(vec![job(0, 0.0, 2.0, 0)], sites(), 0.0),
            DeadlineProblem::new(vec![job(0, 0.0, 2.0, 0), job(1, 0.4, 1.0, 1)], sites(), 0.4),
            DeadlineProblem::new(
                vec![
                    job(0, 0.0, 2.0, 0),
                    job(1, 0.4, 1.0, 1),
                    job(2, 0.9, 3.0, 0),
                ],
                sites(),
                0.9,
            ),
            DeadlineProblem::new(vec![job(0, 0.0, 2.0, 0), job(2, 0.9, 3.0, 0)], sites(), 1.3),
            DeadlineProblem::new(vec![job(2, 0.9, 3.0, 0)], sites(), 2.0),
            DeadlineProblem::new(vec![], sites(), 3.0),
        ];
        for (i, problem) in events.iter().enumerate() {
            let delta = splicer.apply(problem);
            assert_eq!(delta.rebuilt, i == 0, "only the first event rebuilds");
            assert_eq!(
                bits(splicer.times()),
                bits(&fresh_times(problem)),
                "event {i} diverged"
            );
        }
        assert_eq!(splicer.rebuilds(), 1);
        assert_eq!(splicer.splices(), events.len() as u64 - 1);
    }

    #[test]
    fn shared_ready_lines_merge_and_split_by_refcount() {
        let mut splicer = EpochSplicer::new();
        // Three on-line jobs share ready == now: one line, refcount 4
        // (3 jobs + the problem's own now line).
        let p1 = DeadlineProblem::new(
            vec![
                job(0, 1.0, 2.0, 0),
                job(1, 1.0, 1.0, 0),
                job(2, 1.0, 3.0, 1),
            ],
            sites(),
            1.0,
        );
        splicer.apply(&p1);
        assert_eq!(splicer.times().len(), 1 + 3, "shared line merged");
        // One job leaves: the shared line survives (count drops), its
        // deadline line goes.
        let p2 = DeadlineProblem::new(vec![job(0, 1.0, 2.0, 0), job(2, 1.0, 3.0, 1)], sites(), 1.0);
        let delta = splicer.apply(&p2);
        assert_eq!(delta.departed, 1);
        assert_eq!(bits(splicer.times()), bits(&fresh_times(&p2)));
    }

    #[test]
    fn degenerate_values_bail_to_the_rebuild_construction() {
        let mut splicer = EpochSplicer::new();
        let clean = DeadlineProblem::new(vec![job(0, 0.0, 2.0, 0)], sites(), 0.0);
        splicer.apply(&clean);
        assert_eq!(splicer.rebuilds(), 1);
        // A negative-zero release: the splice refuses and the sort-dedup
        // fallback still matches the rebuild path exactly.
        let dirty = DeadlineProblem::new(
            vec![job(0, -0.0, 2.0, 0), job(1, 0.5, 1.0, 0)],
            sites(),
            0.5,
        );
        let delta = splicer.apply(&dirty);
        assert!(delta.rebuilt);
        assert_eq!(bits(splicer.times()), bits(&fresh_times(&dirty)));
        assert_eq!(splicer.rebuilds(), 2);
        // The next clean event re-primes (a rebuild), then splicing resumes.
        let clean2 = DeadlineProblem::new(vec![job(1, 0.5, 1.0, 0)], sites(), 1.0);
        assert!(splicer.apply(&clean2).rebuilt);
        let clean3 = DeadlineProblem::new(vec![job(1, 0.5, 1.0, 0)], sites(), 1.5);
        assert!(!splicer.apply(&clean3).rebuilt);
        assert_eq!(bits(splicer.times()), bits(&fresh_times(&clean3)));
    }

    #[test]
    fn duplicate_job_ids_force_a_rebuild() {
        let mut splicer = EpochSplicer::new();
        let dup =
            DeadlineProblem::new(vec![job(7, 0.0, 2.0, 0), job(7, 0.5, 1.0, 0)], sites(), 0.0);
        let delta = splicer.apply(&dup);
        assert!(delta.rebuilt);
        assert_eq!(bits(splicer.times()), bits(&fresh_times(&dup)));
    }

    #[test]
    fn reused_ids_with_changed_identity_are_respliced_not_corrupted() {
        let mut splicer = EpochSplicer::new();
        let p1 = DeadlineProblem::new(vec![job(3, 0.0, 2.0, 0)], sites(), 0.0);
        splicer.apply(&p1);
        // Same id, different release/work (never happens through the
        // scheduler; the raw API allows it).
        let p2 = DeadlineProblem::new(vec![job(3, 0.5, 4.0, 0)], sites(), 0.5);
        let delta = splicer.apply(&p2);
        assert!(!delta.rebuilt);
        assert!(delta.moved >= 1);
        assert_eq!(bits(splicer.times()), bits(&fresh_times(&p2)));
    }

    #[test]
    fn arena_system2_solves_match_the_rebuild_path_bitwise() {
        use stretch_flow::NetworkSimplexBackend;
        let mut arena = System2Arena::new();
        let mut backend = NetworkSimplexBackend::new();
        let mut reference_backend = NetworkSimplexBackend::new();
        let mut ws = FlowWorkspace::new();
        let mut reference_ws = FlowWorkspace::new();
        let events = [
            DeadlineProblem::new(vec![job(0, 0.0, 2.0, 0)], sites(), 0.0),
            DeadlineProblem::new(vec![job(0, 0.0, 2.0, 0), job(1, 0.4, 1.0, 1)], sites(), 0.4),
            DeadlineProblem::new(vec![job(1, 0.4, 1.0, 1)], sites(), 1.1),
            DeadlineProblem::new(vec![], sites(), 2.0),
        ];
        for (i, problem) in events.iter().enumerate() {
            let stretch = 1.8;
            let incremental = arena.solve(problem, stretch, &mut backend, &mut ws);
            let rebuilt = problem.system2_allocation_with_backend(
                stretch,
                &mut reference_backend,
                &mut reference_ws,
            );
            match (incremental, rebuilt) {
                (Some(a), Some(b)) => {
                    assert_eq!(a.intervals.len(), b.intervals.len(), "event {i}");
                    for (x, y) in a.intervals.iter().zip(&b.intervals) {
                        assert_eq!(x.0.to_bits(), y.0.to_bits());
                        assert_eq!(x.1.to_bits(), y.1.to_bits());
                    }
                    assert_eq!(a.pieces.len(), b.pieces.len(), "event {i}");
                    for (x, y) in a.pieces.iter().zip(&b.pieces) {
                        assert_eq!(
                            (x.job_index, x.job_id, x.site, x.interval),
                            (y.job_index, y.job_id, y.site, y.interval)
                        );
                        assert_eq!(x.work.to_bits(), y.work.to_bits());
                    }
                }
                (a, b) => assert_eq!(a.is_some(), b.is_some(), "event {i} verdicts diverged"),
            }
        }
    }
}
