//! Dynamic priority rules (§4 of the paper).
//!
//! All the single-processor heuristics of the paper are preemptive *list*
//! schedulers: maintain a priority over the released, uncompleted jobs and
//! always execute the job(s) of highest priority.  The same rules drive the
//! multiprocessor list scheduler of §3 (the highest-priority job grabs every
//! appropriate available processor).
//!
//! Priorities are expressed as a key to *minimise*: the job with the smallest
//! key is served first.

/// The per-job data a priority rule may look at.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JobView {
    /// Release date `r_j`.
    pub release: f64,
    /// Original size `W_j` (or processing time `p_j` on one processor — the
    /// two only differ by a constant factor under the uniform hypothesis, so
    /// every rule below orders jobs identically under either convention).
    pub total_work: f64,
    /// Remaining size `ρ_t(j)`.
    pub remaining_work: f64,
    /// Deadline, when the rule needs one (EDF).
    pub deadline: Option<f64>,
}

/// The priority rules studied in the paper.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PriorityRule {
    /// First come, first served — optimal for max-flow (§4.1).
    Fcfs,
    /// Shortest remaining processing time — optimal for sum-flow and
    /// 2-competitive for sum-stretch (§4.1–4.2).
    Srpt,
    /// Shortest processing time first.
    Spt,
    /// Shortest *weighted* processing time (Smith's ratio rule); with stretch
    /// weights `w_j = 1/W_j` the ratio `p_j / w_j` equals `p_j²`, so SWPT
    /// orders jobs exactly like SPT (§4.2).
    Swpt,
    /// Shortest weighted remaining processing time: minimise
    /// `ρ_t(j) / w_j = ρ_t(j) · W_j` (§4.2).
    Swrpt,
    /// The pseudo-stretch rule of Bender, Muthukrishnan and Rajaraman
    /// (SODA'02): serve the job of largest pseudo-stretch, where the
    /// pseudo-stretch divides the age by `√Δ` for small jobs and by `Δ` for
    /// large ones.  `smallest_work` and `delta` describe the instance
    /// (`Δ` = largest/smallest size ratio).
    PseudoStretch {
        /// Size of the smallest job of the instance.
        smallest_work: f64,
        /// Ratio of the largest to the smallest job size.
        delta: f64,
    },
    /// Earliest deadline first; the deadline must be supplied in [`JobView`].
    Edf,
}

impl PriorityRule {
    /// Key to minimise for `job` at time `now`; smaller = served first.
    pub fn key(&self, now: f64, job: &JobView) -> f64 {
        match *self {
            PriorityRule::Fcfs => job.release,
            PriorityRule::Srpt => job.remaining_work,
            PriorityRule::Spt => job.total_work,
            PriorityRule::Swpt => job.total_work * job.total_work,
            PriorityRule::Swrpt => job.remaining_work * job.total_work,
            PriorityRule::PseudoStretch {
                smallest_work,
                delta,
            } => {
                // Normalise sizes so the smallest job has size 1, as in the
                // original formulation (1 <= p_j <= Δ).
                let normalised = job.total_work / smallest_work;
                let divisor = if normalised <= delta.sqrt() {
                    delta.sqrt()
                } else {
                    delta
                };
                // Larger pseudo-stretch = higher priority, hence the sign.
                -((now - job.release).max(0.0) / divisor)
            }
            PriorityRule::Edf => job.deadline.expect("EDF requires a deadline for every job"),
        }
    }

    /// Display name used in tables.
    pub fn name(&self) -> &'static str {
        match self {
            PriorityRule::Fcfs => "FCFS",
            PriorityRule::Srpt => "SRPT",
            PriorityRule::Spt => "SPT",
            PriorityRule::Swpt => "SWPT",
            PriorityRule::Swrpt => "SWRPT",
            PriorityRule::PseudoStretch { .. } => "Bender02",
            PriorityRule::Edf => "EDF",
        }
    }

    /// Sorts job indices by increasing key (stable, ties keep input order,
    /// which for release-sorted inputs matches the paper's FIFO tie-break).
    pub fn order(&self, now: f64, jobs: &[(usize, JobView)]) -> Vec<usize> {
        let mut order: Vec<usize> = (0..jobs.len()).collect();
        order.sort_by(|&a, &b| {
            let ka = self.key(now, &jobs[a].1);
            let kb = self.key(now, &jobs[b].1);
            ka.total_cmp(&kb)
        });
        order.into_iter().map(|i| jobs[i].0).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(release: f64, total: f64, remaining: f64) -> JobView {
        JobView {
            release,
            total_work: total,
            remaining_work: remaining,
            deadline: None,
        }
    }

    #[test]
    fn srpt_prefers_least_remaining() {
        let rule = PriorityRule::Srpt;
        assert!(rule.key(0.0, &job(0.0, 10.0, 2.0)) < rule.key(0.0, &job(0.0, 1.0, 3.0)));
    }

    #[test]
    fn spt_and_swpt_agree_on_order() {
        // SWPT with stretch weights squares the processing time, which is a
        // monotone transform: same order as SPT.
        let a = job(0.0, 2.0, 1.0);
        let b = job(0.0, 5.0, 0.1);
        let spt = PriorityRule::Spt;
        let swpt = PriorityRule::Swpt;
        assert_eq!(
            spt.key(0.0, &a) < spt.key(0.0, &b),
            swpt.key(0.0, &a) < swpt.key(0.0, &b)
        );
    }

    #[test]
    fn swrpt_balances_remaining_and_size() {
        let rule = PriorityRule::Swrpt;
        // A nearly finished large job beats a fresh medium job:
        // 0.1 * 10 = 1 < 2 * 2 = 4.
        assert!(rule.key(0.0, &job(0.0, 10.0, 0.1)) < rule.key(0.0, &job(0.0, 2.0, 2.0)));
    }

    #[test]
    fn pseudo_stretch_prefers_older_jobs_and_penalises_large_ones() {
        let rule = PriorityRule::PseudoStretch {
            smallest_work: 1.0,
            delta: 100.0,
        };
        // Same size, the older job wins.
        let old = job(0.0, 1.0, 1.0);
        let young = job(5.0, 1.0, 1.0);
        assert!(rule.key(10.0, &old) < rule.key(10.0, &young));
        // Same age, a small job (divided by √Δ = 10) beats a large one
        // (divided by Δ = 100).
        let small = job(0.0, 2.0, 2.0);
        let large = job(0.0, 60.0, 60.0);
        assert!(rule.key(10.0, &small) < rule.key(10.0, &large));
    }

    #[test]
    fn edf_uses_deadlines_and_panics_without_one() {
        let rule = PriorityRule::Edf;
        let mut a = job(0.0, 1.0, 1.0);
        a.deadline = Some(4.0);
        let mut b = job(0.0, 1.0, 1.0);
        b.deadline = Some(2.0);
        assert!(rule.key(0.0, &b) < rule.key(0.0, &a));
        let result = std::panic::catch_unwind(|| rule.key(0.0, &job(0.0, 1.0, 1.0)));
        assert!(result.is_err());
    }

    #[test]
    fn order_is_stable_for_ties() {
        let rule = PriorityRule::Fcfs;
        let jobs = vec![(7, job(1.0, 1.0, 1.0)), (3, job(1.0, 2.0, 2.0))];
        assert_eq!(rule.order(0.0, &jobs), vec![7, 3]);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(PriorityRule::Srpt.name(), "SRPT");
        assert_eq!(
            PriorityRule::PseudoStretch {
                smallest_work: 1.0,
                delta: 2.0
            }
            .name(),
            "Bender02"
        );
    }
}
