//! The Bender, Chakrabarti, Muthukrishnan (SODA'98) on-line algorithm.
//!
//! At every arrival the algorithm recomputes, *from scratch*, the off-line
//! optimal max-stretch `S*` of all the jobs released so far, gives every job
//! the deadline `r_j + α · S* · W_j` with the expansion factor `α = √Δ`, and
//! schedules by Earliest Deadline First.  It is `O(√Δ)`-competitive but, as
//! §5.3 shows, both expensive (one full off-line optimisation per arrival)
//! and pessimistic in practice.
//!
//! (The companion SODA'02 algorithm, `Bender02`, is a simple pseudo-stretch
//! priority rule and lives in [`crate::list`] as [`crate::list::ListRule::Bender02`].)

use crate::config::SolverConfig;
use crate::deadline::{DeadlineProblem, PendingJob};
use crate::parametric::ParametricDeadlineSolver;
use crate::plan::execute_list_order;
use crate::scheduler::{ScheduleError, ScheduleResult, Scheduler};
use crate::sites::SiteView;
use stretch_workload::Instance;

/// The Bender et al. 1998 guaranteed on-line algorithm.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Bender98Scheduler {
    config: SolverConfig,
}

impl Bender98Scheduler {
    /// Creates the scheduler with the default [`SolverConfig`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates the scheduler with an explicit solver configuration (the
    /// per-arrival optimisation is a pure feasibility search, so the
    /// min-cost backend is only exercised indirectly; kept for uniformity).
    pub fn with_config(config: SolverConfig) -> Self {
        Bender98Scheduler { config }
    }
}

impl Scheduler for Bender98Scheduler {
    fn name(&self) -> &'static str {
        "Bender98"
    }

    fn schedule(&self, instance: &Instance) -> Result<ScheduleResult, ScheduleError> {
        let n = instance.num_jobs();
        let sites = SiteView::of(instance);
        let mut remaining: Vec<f64> = instance.jobs.iter().map(|j| j.work).collect();
        let mut completions = vec![f64::NAN; n];

        let mut events: Vec<f64> = instance.jobs.iter().map(|j| j.release).collect();
        events.sort_by(|a, b| a.total_cmp(b));
        events.dedup_by(|a, b| (*a - *b).abs() <= 1e-12);
        // One parametric engine across the per-arrival re-optimisations.
        let mut solver = ParametricDeadlineSolver::with_config(self.config);

        for (e, &now) in events.iter().enumerate() {
            let horizon = events.get(e + 1).copied().unwrap_or(f64::INFINITY);
            let arrived: Vec<&stretch_workload::Job> = instance
                .jobs
                .iter()
                .filter(|j| j.release <= now + 1e-12)
                .collect();
            if arrived.is_empty() {
                continue;
            }

            // Off-line optimal max-stretch of every job arrived so far, from
            // scratch (full works, original release dates) — exactly what the
            // original algorithm prescribes, and the source of its overhead.
            let scratch_jobs: Vec<PendingJob> = arrived
                .iter()
                .map(|j| PendingJob {
                    job_id: j.id,
                    release: j.release,
                    ready: j.release,
                    work: j.work,
                    remaining: j.work,
                    databank: j.databank,
                })
                .collect();
            let scratch = DeadlineProblem::new(scratch_jobs, sites.clone(), 0.0);
            let optimal = solver.min_feasible_stretch(&scratch).ok_or_else(|| {
                ScheduleError::Unschedulable("no finite max-stretch achievable".into())
            })?;

            // Expansion factor √Δ over the jobs seen so far.
            let min_w = arrived.iter().map(|j| j.work).fold(f64::INFINITY, f64::min);
            let max_w = arrived.iter().map(|j| j.work).fold(0.0, f64::max);
            let alpha = (max_w / min_w).max(1.0).sqrt();
            let target = optimal * alpha;

            // EDF over the pending jobs with the expanded deadlines.
            let pending: Vec<PendingJob> = arrived
                .iter()
                .filter(|j| remaining[j.id] > 1e-9)
                .map(|j| PendingJob {
                    job_id: j.id,
                    release: j.release,
                    ready: now,
                    work: j.work,
                    remaining: remaining[j.id],
                    databank: j.databank,
                })
                .collect();
            if pending.is_empty() {
                continue;
            }
            let problem = DeadlineProblem::new(pending, sites.clone(), now);
            let mut order: Vec<usize> = (0..problem.jobs.len()).collect();
            order.sort_by(|&a, &b| {
                let da = problem.jobs[a].deadline(target);
                let db = problem.jobs[b].deadline(target);
                da.total_cmp(&db)
            });
            let execution = execute_list_order(&problem, &order, &sites, now, horizon);
            for (idx, job) in problem.jobs.iter().enumerate() {
                remaining[job.job_id] = (remaining[job.job_id] - execution.executed[idx]).max(0.0);
                if let Some(&c) = execution.completions.get(&idx) {
                    remaining[job.job_id] = 0.0;
                    completions[job.job_id] = c;
                }
            }
        }

        if completions.iter().any(|c| c.is_nan()) {
            return Err(ScheduleError::Simulation(
                "some job never completed under Bender98".into(),
            ));
        }
        Ok(ScheduleResult::from_completions(
            self.name(),
            instance,
            &completions,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offline::{optimal_max_stretch, OfflineBackend};
    use stretch_platform::fixtures::small_platform;
    use stretch_workload::Job;

    fn instance(jobs: Vec<Job>) -> Instance {
        Instance::new(small_platform(), jobs)
    }

    #[test]
    fn single_job_is_served_immediately() {
        let inst = instance(vec![Job::new(0, 0.0, 120.0, 0)]);
        let r = Bender98Scheduler::new().schedule(&inst).unwrap();
        assert!((r.completion(0) - 2.0).abs() < 1e-3);
    }

    #[test]
    fn all_jobs_complete_and_respect_releases() {
        let inst = instance(vec![
            Job::new(0, 0.0, 200.0, 0),
            Job::new(1, 1.0, 60.0, 1),
            Job::new(2, 2.0, 90.0, 0),
            Job::new(3, 5.0, 30.0, 1),
        ]);
        let r = Bender98Scheduler::new().schedule(&inst).unwrap();
        assert_eq!(r.outcomes.len(), 4);
        for o in &r.outcomes {
            assert!(o.completion >= o.release - 1e-9);
        }
    }

    #[test]
    fn bender98_never_beats_the_offline_optimum_on_max_stretch() {
        let inst = instance(vec![
            Job::new(0, 0.0, 250.0, 0),
            Job::new(1, 0.5, 100.0, 1),
            Job::new(2, 1.5, 50.0, 0),
            Job::new(3, 3.0, 75.0, 1),
        ]);
        let r = Bender98Scheduler::new().schedule(&inst).unwrap();
        let opt = optimal_max_stretch(&inst, OfflineBackend::Flow).unwrap();
        let aggregate = inst.platform.aggregate_speed();
        assert!(r.metrics.max_stretch / aggregate >= opt.stretch * (1.0 - 1e-3));
    }
}
