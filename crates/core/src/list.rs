//! Multiprocessor preemptive list scheduling (§3, applied to the §4 rules).
//!
//! The paper lifts every single-processor heuristic to the restricted-
//! availability multiprocessor case with one rule:
//!
//! > *while some processors are idle: select the job with the highest
//! > priority and distribute its processing on all appropriate processors
//! > that are available.*
//!
//! [`ListScheduler`] implements exactly that on top of the fluid engine:
//! at every event the released, uncompleted jobs are ordered by the chosen
//! [`PriorityRule`]; the first job grabs every idle processor hosting its
//! databank, the second grabs every remaining idle eligible processor, and so
//! on.

use crate::priority::{JobView, PriorityRule};
use crate::scheduler::{ScheduleError, ScheduleResult, Scheduler};
use stretch_sim::{
    Allocation, FluidEngine, JobSpec, JobState, MachineSpec, MachineState, RatePolicy,
};
use stretch_workload::Instance;

/// Which priority rule a [`ListScheduler`] applies.
///
/// This mirrors [`PriorityRule`] but leaves out the instance-dependent
/// parameters (the Bender02 pseudo-stretch needs `Δ` and the smallest job
/// size, which are computed per instance) and the EDF rule (which needs
/// deadlines and is only used internally by the Bender98 scheduler).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ListRule {
    /// First come, first served.
    Fcfs,
    /// Shortest remaining processing time.
    Srpt,
    /// Shortest processing time.
    Spt,
    /// Smith's rule with stretch weights.
    Swpt,
    /// Shortest weighted remaining processing time.
    Swrpt,
    /// Bender et al. 2002 pseudo-stretch rule.
    Bender02,
}

impl ListRule {
    /// Builds the concrete [`PriorityRule`] for a given instance.
    fn rule_for(&self, instance: &Instance) -> PriorityRule {
        match self {
            ListRule::Fcfs => PriorityRule::Fcfs,
            ListRule::Srpt => PriorityRule::Srpt,
            ListRule::Spt => PriorityRule::Spt,
            ListRule::Swpt => PriorityRule::Swpt,
            ListRule::Swrpt => PriorityRule::Swrpt,
            ListRule::Bender02 => {
                let smallest = instance
                    .jobs
                    .iter()
                    .map(|j| j.work)
                    .fold(f64::INFINITY, f64::min);
                PriorityRule::PseudoStretch {
                    smallest_work: smallest,
                    delta: instance.delta().max(1.0),
                }
            }
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            ListRule::Fcfs => "FCFS",
            ListRule::Srpt => "SRPT",
            ListRule::Spt => "SPT",
            ListRule::Swpt => "SWPT",
            ListRule::Swrpt => "SWRPT",
            ListRule::Bender02 => "Bender02",
        }
    }
}

/// The §3 list-scheduling policy driven by a dynamic priority rule.
pub struct ListPolicy {
    rule: PriorityRule,
    /// For each job (by engine index), the machine indices allowed to run it.
    eligibility: Vec<Vec<usize>>,
    /// Optional per-job deadlines, consulted by the EDF rule.
    deadlines: Option<Vec<f64>>,
}

impl ListPolicy {
    /// Creates a policy.
    pub fn new(rule: PriorityRule, eligibility: Vec<Vec<usize>>) -> Self {
        ListPolicy {
            rule,
            eligibility,
            deadlines: None,
        }
    }

    /// Attaches deadlines (required by [`PriorityRule::Edf`]).
    pub fn with_deadlines(mut self, deadlines: Vec<f64>) -> Self {
        self.deadlines = Some(deadlines);
        self
    }
}

impl RatePolicy for ListPolicy {
    fn allocate(&mut self, now: f64, jobs: &[JobState], machines: &[MachineState]) -> Allocation {
        let views: Vec<(usize, JobView)> = jobs
            .iter()
            .enumerate()
            .filter(|(_, j)| j.is_active())
            .map(|(idx, j)| {
                (
                    idx,
                    JobView {
                        release: j.spec.release,
                        total_work: j.spec.work,
                        remaining_work: j.remaining,
                        deadline: self.deadlines.as_ref().map(|d| d[idx]),
                    },
                )
            })
            .collect();
        let order = self.rule.order(now, &views);
        let mut available = vec![true; machines.len()];
        let mut remaining_idle = machines.len();
        let mut allocation = Allocation::idle();
        for job in order {
            if remaining_idle == 0 {
                break;
            }
            for &m in &self.eligibility[job] {
                if available[m] {
                    available[m] = false;
                    remaining_idle -= 1;
                    allocation.assign_full(m, job);
                }
            }
        }
        allocation
    }

    fn name(&self) -> &str {
        self.rule.name()
    }
}

/// Preemptive multiprocessor list scheduler for one of the §4 priority rules.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ListScheduler {
    rule: ListRule,
}

impl ListScheduler {
    /// Creates a list scheduler applying `rule`.
    pub fn new(rule: ListRule) -> Self {
        ListScheduler { rule }
    }

    /// FCFS list scheduler.
    pub fn fcfs() -> Self {
        Self::new(ListRule::Fcfs)
    }
    /// SRPT list scheduler.
    pub fn srpt() -> Self {
        Self::new(ListRule::Srpt)
    }
    /// SPT list scheduler.
    pub fn spt() -> Self {
        Self::new(ListRule::Spt)
    }
    /// SWPT list scheduler.
    pub fn swpt() -> Self {
        Self::new(ListRule::Swpt)
    }
    /// SWRPT list scheduler.
    pub fn swrpt() -> Self {
        Self::new(ListRule::Swrpt)
    }
    /// Bender02 pseudo-stretch list scheduler.
    pub fn bender02() -> Self {
        Self::new(ListRule::Bender02)
    }

    /// Runs the underlying fluid simulation and returns raw completion times
    /// (used by other schedulers that post-process the list schedule).
    pub fn completions(&self, instance: &Instance) -> Result<Vec<f64>, ScheduleError> {
        run_list_simulation(instance, self.rule.rule_for(instance), None)
    }
}

/// Simulates list scheduling of `instance` under `rule` (with optional
/// deadlines for EDF) and returns per-job completion times.
pub fn run_list_simulation(
    instance: &Instance,
    rule: PriorityRule,
    deadlines: Option<Vec<f64>>,
) -> Result<Vec<f64>, ScheduleError> {
    let machines: Vec<MachineSpec> = instance
        .platform
        .processors
        .iter()
        .map(|p| MachineSpec::new(p.id, p.speed))
        .collect();
    let jobs: Vec<JobSpec> = instance
        .jobs
        .iter()
        .map(|j| JobSpec::new(j.id, j.release, j.work))
        .collect();
    let eligibility: Vec<Vec<usize>> = (0..instance.num_jobs())
        .map(|j| instance.eligible_processors(j))
        .collect();
    let mut policy = ListPolicy::new(rule, eligibility);
    if let Some(d) = deadlines {
        policy = policy.with_deadlines(d);
    }
    let mut engine = FluidEngine::new(machines, jobs);
    let trace = engine
        .run(&mut policy)
        .map_err(|e| ScheduleError::Simulation(e.to_string()))?;
    let mut completions = vec![f64::NAN; instance.num_jobs()];
    for c in &trace.completions {
        completions[c.job] = c.completion;
    }
    if completions.iter().any(|c| c.is_nan()) {
        return Err(ScheduleError::Simulation("some job never completed".into()));
    }
    Ok(completions)
}

impl Scheduler for ListScheduler {
    fn name(&self) -> &'static str {
        self.rule.name()
    }

    fn schedule(&self, instance: &Instance) -> Result<ScheduleResult, ScheduleError> {
        let completions = self.completions(instance)?;
        Ok(ScheduleResult::from_completions(
            self.name(),
            instance,
            &completions,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stretch_platform::fixtures::small_platform;
    use stretch_workload::Job;

    fn instance(jobs: Vec<Job>) -> Instance {
        Instance::new(small_platform(), jobs)
    }

    #[test]
    fn single_job_uses_every_eligible_processor() {
        // Databank 0 is everywhere: aggregate speed 60 MB/s.
        let inst = instance(vec![Job::new(0, 0.0, 120.0, 0)]);
        let r = ListScheduler::srpt().schedule(&inst).unwrap();
        assert!((r.completion(0) - 2.0).abs() < 1e-6);
        // Databank 1 only on cluster 1: aggregate speed 40 MB/s.
        let inst = instance(vec![Job::new(0, 0.0, 120.0, 1)]);
        let r = ListScheduler::srpt().schedule(&inst).unwrap();
        assert!((r.completion(0) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn highest_priority_job_takes_all_eligible_idle_processors() {
        // Two jobs on databank 0 released together; under SRPT the smaller
        // one monopolises the platform first.
        let inst = instance(vec![Job::new(0, 0.0, 300.0, 0), Job::new(1, 0.0, 60.0, 0)]);
        let r = ListScheduler::srpt().schedule(&inst).unwrap();
        assert!((r.completion(1) - 1.0).abs() < 1e-6);
        assert!((r.completion(0) - 6.0).abs() < 1e-6);
    }

    #[test]
    fn lower_priority_job_uses_leftover_processors() {
        // Job 0 targets databank 1 (only cluster 1, 40 MB/s); job 1 targets
        // databank 0.  Under SRPT job 0 (smaller) wins cluster 1, and job 1
        // still runs on cluster 0 (20 MB/s) in the meantime.
        let inst = instance(vec![Job::new(0, 0.0, 40.0, 1), Job::new(1, 0.0, 80.0, 0)]);
        let r = ListScheduler::srpt().schedule(&inst).unwrap();
        assert!((r.completion(0) - 1.0).abs() < 1e-6);
        // Job 1: 20 MB/s for 1 s (20 MB done), then all 60 MB/s -> finishes at
        // 1 + 60/60 = 2.
        assert!((r.completion(1) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn fcfs_does_not_preempt_for_later_arrivals() {
        let inst = instance(vec![Job::new(0, 0.0, 600.0, 0), Job::new(1, 1.0, 6.0, 0)]);
        let fcfs = ListScheduler::fcfs().schedule(&inst).unwrap();
        let srpt = ListScheduler::srpt().schedule(&inst).unwrap();
        // Under FCFS the small job waits for the big one.
        assert!(fcfs.completion(1) > 9.9);
        // Under SRPT it preempts and finishes quickly.
        assert!(srpt.completion(1) < 1.5);
    }

    #[test]
    fn all_rules_produce_valid_schedules_on_a_mixed_instance() {
        let inst = instance(vec![
            Job::new(0, 0.0, 200.0, 0),
            Job::new(1, 1.0, 50.0, 1),
            Job::new(2, 2.0, 400.0, 0),
            Job::new(3, 3.0, 20.0, 1),
        ]);
        for rule in [
            ListRule::Fcfs,
            ListRule::Srpt,
            ListRule::Spt,
            ListRule::Swpt,
            ListRule::Swrpt,
            ListRule::Bender02,
        ] {
            let r = ListScheduler::new(rule).schedule(&inst).unwrap();
            assert_eq!(r.outcomes.len(), 4, "{}", rule.name());
            for o in &r.outcomes {
                assert!(o.completion >= o.release, "{}", rule.name());
            }
            // Conservation sanity: the makespan is at least total work over
            // total speed.
            assert!(r.metrics.makespan >= inst.total_work() / 60.0 - 1e-6);
        }
    }

    #[test]
    fn scheduler_names() {
        assert_eq!(ListScheduler::fcfs().name(), "FCFS");
        assert_eq!(ListScheduler::bender02().name(), "Bender02");
        assert_eq!(ListScheduler::swrpt().name(), "SWRPT");
    }
}
