//! Protein sequence databanks.

/// Identifier of a databank inside a [`crate::Platform`].
pub type DatabankId = usize;

/// A reference protein databank.
///
/// The only property that matters to the scheduler is its **size**: the
/// processing time of a motif comparison is linear in the number of sequences
/// scanned (§2.1, property 2), so the size directly scales job processing
/// times.
#[derive(Clone, Debug, PartialEq)]
pub struct Databank {
    /// Index of the databank in the platform.
    pub id: DatabankId,
    /// Human-readable name (e.g. "SwissProt-42").
    pub name: String,
    /// Size in megabytes; job work is expressed in the same unit.
    pub size_mb: f64,
}

impl Databank {
    /// Creates a databank, validating that the size is positive and finite.
    pub fn new(id: DatabankId, name: impl Into<String>, size_mb: f64) -> Self {
        assert!(
            size_mb > 0.0 && size_mb.is_finite(),
            "databank size must be positive"
        );
        Databank {
            id,
            name: name.into(),
            size_mb,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let d = Databank::new(3, "swissprot", 128.0);
        assert_eq!(d.id, 3);
        assert_eq!(d.name, "swissprot");
        assert_eq!(d.size_mb, 128.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_size() {
        Databank::new(0, "empty", 0.0);
    }
}
