//! Individual sequence-comparison servers (processors).

/// Identifier of a processor inside a [`crate::Platform`].
pub type ProcessorId = usize;

/// A processor of the platform.
///
/// Following the *uniform machines* hypothesis validated in the paper
/// (§2.1, property 3), a processor is fully described by a single speed: the
/// amount of databank it scans per second.  In the paper's notation the
/// processor is characterised by `p_i` seconds per unit of work; we store the
/// reciprocal `speed = 1 / p_i` because the fluid simulator works with rates.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Processor {
    /// Index of the processor in the platform (global, not per cluster).
    pub id: ProcessorId,
    /// Cluster (site) this processor belongs to.
    pub cluster: usize,
    /// Scanning speed in megabytes of databank per second.
    pub speed: f64,
}

impl Processor {
    /// Creates a processor with a strictly positive speed.
    pub fn new(id: ProcessorId, cluster: usize, speed: f64) -> Self {
        assert!(
            speed > 0.0 && speed.is_finite(),
            "processor speed must be positive"
        );
        Processor { id, cluster, speed }
    }

    /// Seconds needed per megabyte of work (`p_i` in the paper's notation).
    pub fn seconds_per_mb(&self) -> f64 {
        1.0 / self.speed
    }

    /// Time to process a job of `work_mb` megabytes alone on this processor.
    pub fn processing_time(&self, work_mb: f64) -> f64 {
        work_mb / self.speed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_helpers() {
        let p = Processor::new(0, 2, 25.0);
        assert!((p.seconds_per_mb() - 0.04).abs() < 1e-12);
        assert!((p.processing_time(100.0) - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_speed() {
        Processor::new(0, 0, -1.0);
    }
}
