//! Random platform generation following §5.1 of the paper.

use crate::databank::Databank;
use crate::platform::{Cluster, Platform};
use crate::processor::Processor;
use crate::reference;
use rand::Rng;

/// The platform-side experimental parameters of a simulation configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PlatformConfig {
    /// Number of clusters (sites); §5.1 item 1.
    pub num_clusters: usize,
    /// Number of processors per cluster; fixed to 10 in the paper.
    pub processors_per_cluster: usize,
    /// Number of distinct reference databanks; §5.1 item 3.
    pub num_databanks: usize,
    /// Probability that a given databank is replicated at a given site;
    /// §5.1 item 5.
    pub availability: f64,
    /// Databank size range in MB; §5.1 item 4.
    pub databank_size_range: (f64, f64),
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig {
            num_clusters: 3,
            processors_per_cluster: reference::PROCESSORS_PER_CLUSTER,
            num_databanks: 3,
            availability: 0.6,
            databank_size_range: (reference::MIN_DATABANK_MB, reference::MAX_DATABANK_MB),
        }
    }
}

impl PlatformConfig {
    /// Builds a configuration with the paper's defaults for the fields not
    /// part of the experimental grid.
    pub fn new(num_clusters: usize, num_databanks: usize, availability: f64) -> Self {
        assert!(num_clusters > 0 && num_databanks > 0);
        assert!((0.0..=1.0).contains(&availability));
        PlatformConfig {
            num_clusters,
            num_databanks,
            availability,
            ..Default::default()
        }
    }
}

/// Random generator of [`Platform`] instances for a given configuration.
#[derive(Clone, Debug)]
pub struct PlatformGenerator {
    config: PlatformConfig,
}

impl PlatformGenerator {
    /// Creates a generator for `config`.
    pub fn new(config: PlatformConfig) -> Self {
        assert!(config.num_clusters > 0, "at least one cluster");
        assert!(
            config.processors_per_cluster > 0,
            "at least one processor per cluster"
        );
        assert!(config.num_databanks > 0, "at least one databank");
        assert!(
            (0.0..=1.0).contains(&config.availability),
            "availability must be a probability"
        );
        let (lo, hi) = config.databank_size_range;
        assert!(lo > 0.0 && hi >= lo, "invalid databank size range");
        PlatformGenerator { config }
    }

    /// The configuration driving this generator.
    pub fn config(&self) -> &PlatformConfig {
        &self.config
    }

    /// Draws one random platform.
    ///
    /// * cluster speeds are drawn uniformly from the six reference platforms;
    /// * databank sizes are drawn uniformly (continuously) from the size
    ///   range;
    /// * each databank is replicated at each site independently with
    ///   probability `availability`, and forced onto one uniformly random
    ///   site when it would otherwise be hosted nowhere (the paper's model
    ///   implicitly requires every databank to be reachable).
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Platform {
        let cfg = &self.config;
        let mut clusters = Vec::with_capacity(cfg.num_clusters);
        let mut processors = Vec::with_capacity(cfg.num_clusters * cfg.processors_per_cluster);
        for c in 0..cfg.num_clusters {
            let speed = reference::REFERENCE_SPEEDS_MB_PER_S
                [rng.gen_range(0..reference::REFERENCE_SPEEDS_MB_PER_S.len())];
            let mut members = Vec::with_capacity(cfg.processors_per_cluster);
            for _ in 0..cfg.processors_per_cluster {
                let id = processors.len();
                processors.push(Processor::new(id, c, speed));
                members.push(id);
            }
            clusters.push(Cluster {
                id: c,
                speed,
                processors: members,
                hosted_databanks: Vec::new(),
            });
        }

        let (lo, hi) = cfg.databank_size_range;
        let mut databanks = Vec::with_capacity(cfg.num_databanks);
        for d in 0..cfg.num_databanks {
            let size = rng.gen_range(lo..=hi);
            databanks.push(Databank::new(d, format!("databank-{d}"), size));
            let mut hosted_somewhere = false;
            for cluster in clusters.iter_mut() {
                if rng.gen_bool(cfg.availability) {
                    cluster.hosted_databanks.push(d);
                    hosted_somewhere = true;
                }
            }
            if !hosted_somewhere {
                let c = rng.gen_range(0..cfg.num_clusters);
                clusters[c].hosted_databanks.push(d);
            }
        }

        Platform::new(clusters, processors, databanks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn generated_platform_is_consistent() {
        let mut rng = SmallRng::seed_from_u64(42);
        let generator = PlatformGenerator::new(PlatformConfig::new(5, 4, 0.5));
        for _ in 0..20 {
            let p = generator.generate(&mut rng);
            assert_eq!(p.num_clusters(), 5);
            assert_eq!(p.num_processors(), 50);
            assert_eq!(p.num_databanks(), 4);
            // Every databank must be servable somewhere.
            for d in 0..p.num_databanks() {
                assert!(!p.eligible_processors(d).is_empty());
            }
            // Every processor's speed is one of the reference speeds.
            for proc in &p.processors {
                assert!(reference::REFERENCE_SPEEDS_MB_PER_S.contains(&proc.speed));
            }
            // Databank sizes are in range.
            for db in &p.databanks {
                assert!(db.size_mb >= reference::MIN_DATABANK_MB);
                assert!(db.size_mb <= reference::MAX_DATABANK_MB);
            }
        }
    }

    #[test]
    fn zero_availability_still_hosts_every_databank_once() {
        let mut rng = SmallRng::seed_from_u64(7);
        let generator = PlatformGenerator::new(PlatformConfig::new(4, 6, 0.0));
        let p = generator.generate(&mut rng);
        for d in 0..p.num_databanks() {
            let hosts: Vec<_> = p.clusters.iter().filter(|c| c.hosts(d)).collect();
            assert_eq!(hosts.len(), 1, "databank {d} hosted exactly once");
        }
    }

    #[test]
    fn full_availability_replicates_everywhere() {
        let mut rng = SmallRng::seed_from_u64(7);
        let generator = PlatformGenerator::new(PlatformConfig::new(3, 3, 1.0));
        let p = generator.generate(&mut rng);
        for d in 0..p.num_databanks() {
            assert_eq!(p.eligible_processors(d).len(), p.num_processors());
        }
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let generator = PlatformGenerator::new(PlatformConfig::new(3, 3, 0.5));
        let a = generator.generate(&mut SmallRng::seed_from_u64(123));
        let b = generator.generate(&mut SmallRng::seed_from_u64(123));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_availability_rejected() {
        PlatformGenerator::new(PlatformConfig {
            availability: 1.5,
            ..Default::default()
        });
    }
}
