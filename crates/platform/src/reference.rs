//! Empirical constants standing in for the GriPPS measurements.
//!
//! §5.2 of the paper: *"Processor speeds are chosen randomly from one of the
//! six reference platforms we studied, and we let database sizes vary
//! continuously over a range of 10 megabytes to 1 gigabyte"*, with average
//! job lengths between 3 and 60 seconds.  We do not have the GriPPS logs, so
//! we embed six reference speeds chosen such that scanning a databank in the
//! 10 MB–1 GB range takes a few seconds to a couple of minutes on a single
//! processor, which reproduces the job-length range the paper reports.
//! This substitution is recorded in DESIGN.md.

/// Number of processors per cluster (site); fixed by §5.1, item 1.
pub const PROCESSORS_PER_CLUSTER: usize = 10;

/// The six reference per-processor scanning speeds, in MB/s.
///
/// A 100 MB databank therefore takes between 2 s (fastest site) and 12.5 s
/// (slowest site) per processor, matching the 3–60 s average job lengths used
/// in the paper once database sizes span 10 MB–1 GB.
pub const REFERENCE_SPEEDS_MB_PER_S: [f64; 6] = [8.0, 12.0, 16.0, 24.0, 36.0, 50.0];

/// Smallest databank size generated, in MB (§5.2).
pub const MIN_DATABANK_MB: f64 = 10.0;

/// Largest databank size generated, in MB (§5.2: roughly one gigabyte).
pub const MAX_DATABANK_MB: f64 = 1024.0;

/// Length of the arrival window, in seconds (§5.1: jobs may arrive between
/// the simulation start and 15 minutes thereafter).
pub const ARRIVAL_WINDOW_S: f64 = 900.0;

/// The database-availability values studied in §5.3.
pub const AVAILABILITY_LEVELS: [f64; 3] = [0.3, 0.6, 0.9];

/// The platform sizes (number of clusters) studied in §5.3.
pub const PLATFORM_SIZES: [usize; 3] = [3, 10, 20];

/// The databank counts studied in §5.3.
pub const DATABANK_COUNTS: [usize; 3] = [3, 10, 20];

/// The workload densities studied in §5.3.
pub const WORKLOAD_DENSITIES: [f64; 6] = [0.75, 1.0, 1.25, 1.5, 2.0, 3.0];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_speeds_cover_the_paper_job_lengths() {
        // A mid-size databank (100 MB) must take a handful of seconds on every
        // reference platform, so that generated workloads have the 3–60 s
        // average job lengths described in §5.2.
        for speed in REFERENCE_SPEEDS_MB_PER_S {
            let t = 100.0 / speed;
            assert!(t > 1.0 && t < 60.0, "100 MB takes {t}s at {speed} MB/s");
        }
    }

    #[test]
    fn experimental_grid_has_162_configurations() {
        let n = PLATFORM_SIZES.len()
            * DATABANK_COUNTS.len()
            * AVAILABILITY_LEVELS.len()
            * WORKLOAD_DENSITIES.len();
        assert_eq!(n, 162);
    }

    #[test]
    fn databank_range_is_ordered() {
        // Sanity-check the constants; clippy sees through the comparison.
        #[allow(clippy::assertions_on_constants)]
        {
            assert!(MIN_DATABANK_MB < MAX_DATABANK_MB);
            assert!(MIN_DATABANK_MB > 0.0);
        }
    }
}
