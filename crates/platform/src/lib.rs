//! # stretch-platform
//!
//! The heterogeneous computing platform of the GriPPS scenario (§2 and §5.1 of
//! the paper): clusters of identical processors, each cluster hosting a subset
//! of the reference protein databanks.  A job (a motif comparison against one
//! databank) may only run on processors whose site holds a copy of that
//! databank — the *restricted availability* model.
//!
//! The crate provides
//!
//! * the static model ([`Platform`], [`Cluster`], [`Processor`],
//!   [`Databank`]),
//! * the empirical constants derived from the GriPPS logs that the paper uses
//!   to instantiate realistic scenarios ([`mod@reference`]),
//! * a random [`generator`] driven by the four experimental parameters of
//!   §5.1 (platform size, number of databanks, database availability,
//!   database size range).

pub mod databank;
pub mod generator;
pub mod platform;
pub mod processor;
pub mod reference;

pub use databank::{Databank, DatabankId};
pub use generator::{PlatformConfig, PlatformGenerator};
pub use platform::{fixtures, Cluster, ClusterId, Platform};
pub use processor::{Processor, ProcessorId};
