//! The assembled platform: clusters, processors, databanks and availability.

use crate::databank::{Databank, DatabankId};
use crate::processor::{Processor, ProcessorId};

/// Identifier of a cluster (site).
pub type ClusterId = usize;

/// A site: a group of identical processors co-located with databank replicas.
#[derive(Clone, Debug, PartialEq)]
pub struct Cluster {
    /// Index of the cluster in the platform.
    pub id: ClusterId,
    /// Speed (MB/s) shared by every processor of the cluster.
    pub speed: f64,
    /// Global processor ids belonging to this cluster.
    pub processors: Vec<ProcessorId>,
    /// Databanks replicated at this site.
    pub hosted_databanks: Vec<DatabankId>,
}

impl Cluster {
    /// `true` when the cluster hosts a replica of `databank`.
    pub fn hosts(&self, databank: DatabankId) -> bool {
        self.hosted_databanks.contains(&databank)
    }
}

/// The complete platform model.
#[derive(Clone, Debug, PartialEq)]
pub struct Platform {
    /// All clusters (sites).
    pub clusters: Vec<Cluster>,
    /// All processors, indexed by their global id.
    pub processors: Vec<Processor>,
    /// All databanks, indexed by their id.
    pub databanks: Vec<Databank>,
}

impl Platform {
    /// Builds a platform and checks internal consistency (ids match indices,
    /// every databank is hosted somewhere, clusters reference real
    /// processors).
    pub fn new(
        clusters: Vec<Cluster>,
        processors: Vec<Processor>,
        databanks: Vec<Databank>,
    ) -> Self {
        for (i, p) in processors.iter().enumerate() {
            assert_eq!(p.id, i, "processor ids must match their index");
            assert!(
                p.cluster < clusters.len(),
                "processor references unknown cluster"
            );
        }
        for (i, d) in databanks.iter().enumerate() {
            assert_eq!(d.id, i, "databank ids must match their index");
        }
        for c in &clusters {
            for &p in &c.processors {
                assert!(p < processors.len(), "cluster references unknown processor");
                assert_eq!(processors[p].cluster, c.id, "processor/cluster mismatch");
            }
            for &d in &c.hosted_databanks {
                assert!(d < databanks.len(), "cluster hosts unknown databank");
            }
        }
        for d in &databanks {
            assert!(
                clusters.iter().any(|c| c.hosts(d.id)),
                "databank {} is hosted nowhere",
                d.id
            );
        }
        Platform {
            clusters,
            processors,
            databanks,
        }
    }

    /// Number of processors in the platform.
    pub fn num_processors(&self) -> usize {
        self.processors.len()
    }

    /// Number of clusters (sites).
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Number of databanks.
    pub fn num_databanks(&self) -> usize {
        self.databanks.len()
    }

    /// Global processor ids that can serve requests against `databank`
    /// (restricted availability: the site must host a replica).
    pub fn eligible_processors(&self, databank: DatabankId) -> Vec<ProcessorId> {
        self.clusters
            .iter()
            .filter(|c| c.hosts(databank))
            .flat_map(|c| c.processors.iter().copied())
            .collect()
    }

    /// `true` when `processor` may serve requests against `databank`.
    pub fn can_serve(&self, processor: ProcessorId, databank: DatabankId) -> bool {
        let cluster = self.processors[processor].cluster;
        self.clusters[cluster].hosts(databank)
    }

    /// Aggregate speed (MB/s) of the whole platform: `Σ 1/p_i`.
    ///
    /// This is the speed of the equivalent single processor of Lemma 1 when
    /// availability is unrestricted.
    pub fn aggregate_speed(&self) -> f64 {
        self.processors.iter().map(|p| p.speed).sum()
    }

    /// Aggregate speed of the processors able to serve `databank`.
    ///
    /// This is the denominator of the *workload density* definition (§5.1,
    /// item 6): the computational power available to handle requests against
    /// that databank.
    pub fn aggregate_speed_for(&self, databank: DatabankId) -> f64 {
        self.eligible_processors(databank)
            .iter()
            .map(|&p| self.processors[p].speed)
            .sum()
    }

    /// Time `p_{i,j}` to process a job of `work_mb` on `processor`, or
    /// `None` (∞ in the paper) when the processor cannot serve the databank.
    pub fn processing_time(
        &self,
        processor: ProcessorId,
        databank: DatabankId,
        work_mb: f64,
    ) -> Option<f64> {
        if self.can_serve(processor, databank) {
            Some(self.processors[processor].processing_time(work_mb))
        } else {
            None
        }
    }
}

/// Hand-built deterministic platforms used in tests, examples and doc tests
/// across the workspace.
pub mod fixtures {
    use super::*;

    /// A small deterministic platform used across the workspace's unit tests:
    /// two clusters (speeds 10 and 20 MB/s, 2 processors each), two databanks,
    /// databank 0 everywhere, databank 1 only on cluster 1.
    pub fn small_platform() -> Platform {
        let clusters = vec![
            Cluster {
                id: 0,
                speed: 10.0,
                processors: vec![0, 1],
                hosted_databanks: vec![0],
            },
            Cluster {
                id: 1,
                speed: 20.0,
                processors: vec![2, 3],
                hosted_databanks: vec![0, 1],
            },
        ];
        let processors = vec![
            Processor::new(0, 0, 10.0),
            Processor::new(1, 0, 10.0),
            Processor::new(2, 1, 20.0),
            Processor::new(3, 1, 20.0),
        ];
        let databanks = vec![
            Databank::new(0, "db-everywhere", 100.0),
            Databank::new(1, "db-restricted", 200.0),
        ];
        Platform::new(clusters, processors, databanks)
    }
}

#[cfg(test)]
mod tests {
    use super::fixtures::small_platform;
    use super::*;

    #[test]
    fn eligibility_follows_replication() {
        let p = small_platform();
        assert_eq!(p.eligible_processors(0), vec![0, 1, 2, 3]);
        assert_eq!(p.eligible_processors(1), vec![2, 3]);
        assert!(p.can_serve(0, 0));
        assert!(!p.can_serve(0, 1));
        assert!(p.can_serve(3, 1));
    }

    #[test]
    fn aggregate_speeds() {
        let p = small_platform();
        assert!((p.aggregate_speed() - 60.0).abs() < 1e-12);
        assert!((p.aggregate_speed_for(0) - 60.0).abs() < 1e-12);
        assert!((p.aggregate_speed_for(1) - 40.0).abs() < 1e-12);
    }

    #[test]
    fn processing_times_respect_restrictions() {
        let p = small_platform();
        assert_eq!(p.processing_time(0, 0, 50.0), Some(5.0));
        assert_eq!(p.processing_time(2, 0, 50.0), Some(2.5));
        assert_eq!(p.processing_time(0, 1, 50.0), None);
    }

    #[test]
    #[should_panic(expected = "hosted nowhere")]
    fn orphan_databank_rejected() {
        let clusters = vec![Cluster {
            id: 0,
            speed: 10.0,
            processors: vec![0],
            hosted_databanks: vec![],
        }];
        let processors = vec![Processor::new(0, 0, 10.0)];
        let databanks = vec![Databank::new(0, "orphan", 10.0)];
        Platform::new(clusters, processors, databanks);
    }

    #[test]
    #[should_panic(expected = "processor/cluster mismatch")]
    fn inconsistent_membership_rejected() {
        let clusters = vec![
            Cluster {
                id: 0,
                speed: 10.0,
                processors: vec![0],
                hosted_databanks: vec![0],
            },
            Cluster {
                id: 1,
                speed: 10.0,
                processors: vec![0], // claims processor 0 which belongs to cluster 0
                hosted_databanks: vec![],
            },
        ];
        let processors = vec![Processor::new(0, 0, 10.0)];
        let databanks = vec![Databank::new(0, "db", 10.0)];
        Platform::new(clusters, processors, databanks);
    }

    #[test]
    fn counts() {
        let p = small_platform();
        assert_eq!(p.num_processors(), 4);
        assert_eq!(p.num_clusters(), 2);
        assert_eq!(p.num_databanks(), 2);
    }
}
